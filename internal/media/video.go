// Package media provides the flow-specific substrate of the paper's
// motivating applications: a synthetic MPEG-like video codec (GOP-patterned
// frame source, decoder with reference-frame dependencies, display sink
// with timing measurement), the priority drop policy used by the §2.1
// feedback pipeline, and a MIDI-style small-item workload for the §4
// many-small-items scenario.
//
// Substitution note (see DESIGN.md): the paper used real MPEG files and
// codecs.  Every reported behaviour depends only on frame sizes, types,
// rates, decode costs and inter-frame dependencies — which this synthetic
// model reproduces deterministically — not on pixel content.
package media

import (
	"fmt"
	"math/rand"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/trace"
	"infopipes/internal/typespec"
)

// FrameType classifies MPEG frames.
type FrameType int

const (
	// FrameI is an intra-coded frame: independently decodable.
	FrameI FrameType = iota + 1
	// FrameP is predicted from the previous I or P frame.
	FrameP
	// FrameB is bi-directionally predicted from surrounding I/P frames.
	FrameB
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return "?"
	}
}

// Frame is the payload of a video item.
type Frame struct {
	Type FrameType
	// Seq is the display sequence number (1-based).
	Seq int64
	// PTS is the presentation time relative to stream start.
	PTS time.Duration
	// Bytes is the compressed size.
	Bytes int
	// Refs lists the frame sequence numbers this frame depends on.
	Refs []int64
	// Decoded marks raw (decompressed) frames.
	Decoded bool
}

// AttrFrameType is the item attribute carrying the frame type, used by
// priority drop filters without inspecting payloads.
const AttrFrameType = "frametype"

// ItemTypeCompressed and ItemTypeRaw are the Typespec item types of the
// video flow before and after decoding.
const (
	ItemTypeCompressed = "video/synthetic-mpeg"
	ItemTypeRaw        = "video/raw-frames"
)

// VideoConfig parameterises the synthetic source.
type VideoConfig struct {
	// FPS is the nominal frame rate (items per second of media time).
	FPS float64
	// GOP is the group-of-pictures pattern, e.g. "IBBPBBPBBPBB".
	GOP string
	// ISize, PSize, BSize are nominal compressed frame sizes in bytes.
	ISize, PSize, BSize int
	// SizeJitter is the +/- fraction of pseudo-random size variation.
	SizeJitter float64
	// Seed makes the size sequence reproducible.
	Seed int64
}

// DefaultVideoConfig models a 30 fps stream with a classic 12-frame GOP.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		FPS:        30,
		GOP:        "IBBPBBPBBPBB",
		ISize:      12000,
		PSize:      6000,
		BSize:      2500,
		SizeJitter: 0.2,
		Seed:       1,
	}
}

// VideoSource is a passive producer generating the synthetic compressed
// stream (the mpeg_file source of the §4 player example).
type VideoSource struct {
	core.Base
	cfg    VideoConfig
	limit  int64
	rng    *rand.Rand
	seq    int64
	gop    []FrameType
	lastIP int64 // seq of the most recent I or P frame
	prevIP int64
}

var _ core.Producer = (*VideoSource)(nil)

// NewVideoSource builds a source producing limit frames (0 = unbounded).
func NewVideoSource(name string, cfg VideoConfig, limit int64) (*VideoSource, error) {
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("media: FPS must be positive, got %g", cfg.FPS)
	}
	if len(cfg.GOP) == 0 || cfg.GOP[0] != 'I' {
		return nil, fmt.Errorf("media: GOP pattern %q must start with I", cfg.GOP)
	}
	gop := make([]FrameType, len(cfg.GOP))
	for i, c := range cfg.GOP {
		switch c {
		case 'I':
			gop[i] = FrameI
		case 'P':
			gop[i] = FrameP
		case 'B':
			gop[i] = FrameB
		default:
			return nil, fmt.Errorf("media: GOP pattern %q has invalid symbol %q", cfg.GOP, c)
		}
	}
	return &VideoSource{
		Base:  core.Base{CompName: name},
		cfg:   cfg,
		limit: limit,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		gop:   gop,
	}, nil
}

// Style implements core.Component.
func (s *VideoSource) Style() core.Style { return core.StyleProducer }

// TransformSpec implements core.Component: the source originates the flow's
// Typespec with its format and rate (§2.3).
func (s *VideoSource) TransformSpec(typespec.Typespec) typespec.Typespec {
	return typespec.New(ItemTypeCompressed).
		WithQoS("rate", typespec.Exactly(s.cfg.FPS)).
		WithProp("gop", s.cfg.GOP)
}

// Pull implements core.Producer.
func (s *VideoSource) Pull(ctx *core.Ctx) (*item.Item, error) {
	if s.limit > 0 && s.seq >= s.limit {
		return nil, core.ErrEOS
	}
	s.seq++
	ft := s.gop[int((s.seq-1)%int64(len(s.gop)))]
	var size int
	var refs []int64
	switch ft {
	case FrameI:
		size = s.vary(s.cfg.ISize)
		s.prevIP, s.lastIP = s.lastIP, s.seq
	case FrameP:
		size = s.vary(s.cfg.PSize)
		refs = []int64{s.lastIP}
		s.prevIP, s.lastIP = s.lastIP, s.seq
	case FrameB:
		size = s.vary(s.cfg.BSize)
		refs = []int64{s.lastIP}
		if s.prevIP > 0 {
			refs = append(refs, s.prevIP)
		}
	}
	f := &Frame{
		Type:  ft,
		Seq:   s.seq,
		PTS:   time.Duration(float64(s.seq-1) / s.cfg.FPS * float64(time.Second)),
		Bytes: size,
		Refs:  refs,
	}
	it := item.New(f, s.seq, ctx.Now()).WithSize(size).WithAttr(AttrFrameType, ft.String())
	return it, nil
}

func (s *VideoSource) vary(base int) int {
	if s.cfg.SizeJitter <= 0 {
		return base
	}
	f := 1 + s.cfg.SizeJitter*(2*s.rng.Float64()-1)
	return int(float64(base) * f)
}

// Decoder is the function-style synthetic decoder: it converts compressed
// frames into raw frames, modelling decode cost as scheduler-clock time
// proportional to the compressed size, and enforcing reference-frame
// dependencies — a P or B frame whose references were dropped upstream is
// undecodable and is discarded (counted, for the E9 quality metric).
type Decoder struct {
	core.Base
	// CostPerKB is the simulated decode time per compressed kilobyte.
	costPerKB time.Duration
	decoded   map[int64]struct{}
	window    []int64
	undecoded trace.Counter
	ok        trace.Counter
}

var _ core.Function = (*Decoder)(nil)

// NewDecoder builds a decoder with the given per-kilobyte decode cost
// (0 = free).
func NewDecoder(name string, costPerKB time.Duration) *Decoder {
	return &Decoder{
		Base:      core.Base{CompName: name},
		costPerKB: costPerKB,
		decoded:   make(map[int64]struct{}, 64),
	}
}

// Style implements core.Component.
func (d *Decoder) Style() core.Style { return core.StyleFunction }

// InputSpec implements core.Component.
func (d *Decoder) InputSpec() typespec.Typespec { return typespec.New(ItemTypeCompressed) }

// TransformSpec implements core.Component.
func (d *Decoder) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	out.ItemType = ItemTypeRaw
	return out
}

// Convert implements core.Function.
func (d *Decoder) Convert(ctx *core.Ctx, it *item.Item) (*item.Item, error) {
	f, ok := it.Payload.(*Frame)
	if !ok {
		return nil, fmt.Errorf("decoder %q: payload %T is not a *media.Frame", d.Name(), it.Payload)
	}
	for _, ref := range f.Refs {
		if _, have := d.decoded[ref]; !have {
			d.undecoded.Inc()
			return nil, nil // reference lost upstream: frame is unplayable
		}
	}
	if d.costPerKB > 0 {
		cost := time.Duration(float64(d.costPerKB) * float64(f.Bytes) / 1024.0)
		ctx.Thread().SleepFor(cost)
	}
	d.remember(f.Seq)
	raw := *f
	raw.Decoded = true
	// The item is converted in place: this stage consumes its input, so no
	// clone is needed — only the payload and accounting size change.
	it.Payload = &raw
	it.Size = f.Bytes * 8 // raw frames are larger; nominal 8x expansion
	d.ok.Inc()
	return it, nil
}

// remember tracks decoded frames over a sliding window so the reference set
// stays bounded (the §2.2 shared-reference-frame lifetime, simplified).
func (d *Decoder) remember(seq int64) {
	d.decoded[seq] = struct{}{}
	d.window = append(d.window, seq)
	const keep = 64
	for len(d.window) > keep {
		delete(d.decoded, d.window[0])
		d.window = d.window[1:]
	}
}

// Undecodable reports frames dropped for missing references.
func (d *Decoder) Undecodable() int64 { return d.undecoded.Value() }

// Decoded reports successfully decoded frames.
func (d *Decoder) Decoded() int64 { return d.ok.Value() }

// PriorityDropPolicy is the §2.1 controlled-dropping policy: level 0 drops
// nothing, level 1 drops B frames, level 2 drops B and P frames, level 3
// drops everything but I frames.  Because it consults only the frame-type
// attribute it composes with any drop filter.
func PriorityDropPolicy(it *item.Item, level int) bool {
	if level <= 0 {
		return false
	}
	switch it.AttrString(AttrFrameType) {
	case "B":
		return level >= 1
	case "P":
		return level >= 2
	case "I":
		return level >= 3
	default:
		return false
	}
}

// Display is the video display sink: a passive consumer that records
// presentation timing — per-frame latency, inter-frame jitter, counts by
// type — the measuring end of experiments E1, E9 and E10.
type Display struct {
	core.Base
	latency   trace.Series
	interShow trace.Series
	byType    map[FrameType]int64
	lastShow  time.Time
	frames    trace.Counter
	resizes   trace.Counter
	width     int
}

var _ core.Consumer = (*Display)(nil)

// NewDisplay builds a display sink.
func NewDisplay(name string) *Display {
	return &Display{Base: core.Base{CompName: name}, byType: make(map[FrameType]int64)}
}

// Style implements core.Component.
func (d *Display) Style() core.Style { return core.StyleConsumer }

// InputSpec implements core.Component: the display needs raw frames.
func (d *Display) InputSpec() typespec.Typespec { return typespec.New(ItemTypeRaw) }

// Push implements core.Consumer.
func (d *Display) Push(ctx *core.Ctx, it *item.Item) error {
	now := ctx.Now()
	d.frames.Inc()
	d.latency.ObserveDuration(it.Age(now))
	if !d.lastShow.IsZero() {
		d.interShow.ObserveDuration(now.Sub(d.lastShow))
	}
	d.lastShow = now
	if f, ok := it.Payload.(*Frame); ok {
		d.byType[f.Type]++
	}
	it.Recycle() // terminal sink: the item's journey ends here
	return nil
}

// HandleEvent implements core.Component: a resize event records the new
// width and is propagated upstream (§2.2's display -> resizer interaction
// is driven from application code via EmitUpstream).
func (d *Display) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type != events.Resize {
		return
	}
	if w, ok := ev.Data.(int); ok {
		d.width = w
		d.resizes.Inc()
	}
}

// Frames reports the number of displayed frames.
func (d *Display) Frames() int64 { return d.frames.Value() }

// FramesByType reports displayed frames of one type.
func (d *Display) FramesByType(t FrameType) int64 { return d.byType[t] }

// Latency exposes the per-frame latency series (seconds).
func (d *Display) Latency() *trace.Series { return &d.latency }

// Jitter reports the mean absolute deviation between consecutive
// inter-frame display gaps, in seconds.
func (d *Display) Jitter() float64 { return d.interShow.Jitter() }

// MeanInterFrame reports the mean gap between displayed frames in seconds.
func (d *Display) MeanInterFrame() float64 { return d.interShow.Mean() }

// Width reports the last resize width (0 if never resized).
func (d *Display) Width() int { return d.width }
