package media_test

import (
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/media"
	"infopipes/internal/pipes"
	"infopipes/internal/uthread"
)

func runToEnd(t *testing.T, stages []core.Stage) *core.Pipeline {
	t.Helper()
	s := uthread.New()
	p, err := core.Compose("test", s, nil, stages)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return p
}

func TestVideoSourceGOPPattern(t *testing.T) {
	cfg := media.DefaultVideoConfig()
	src, err := media.NewVideoSource("src", cfg, 24)
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	runToEnd(t, []core.Stage{
		core.Comp(src),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(sink),
	})
	items := sink.Items()
	if len(items) != 24 {
		t.Fatalf("got %d frames, want 24", len(items))
	}
	for i, it := range items {
		f := it.Payload.(*media.Frame)
		want := cfg.GOP[i%len(cfg.GOP)]
		if f.Type.String() != string(want) {
			t.Errorf("frame %d type %s, want %c", i, f.Type, want)
		}
		if it.AttrString(media.AttrFrameType) != f.Type.String() {
			t.Errorf("frame %d attr mismatch", i)
		}
		wantPTS := time.Duration(float64(i) / cfg.FPS * float64(time.Second))
		if f.PTS != wantPTS {
			t.Errorf("frame %d PTS %v, want %v", i, f.PTS, wantPTS)
		}
	}
	// I frames are larger than P, P larger than B, on average.
	var iSum, pSum, bSum, iN, pN, bN int
	for _, it := range items {
		f := it.Payload.(*media.Frame)
		switch f.Type {
		case media.FrameI:
			iSum += f.Bytes
			iN++
		case media.FrameP:
			pSum += f.Bytes
			pN++
		case media.FrameB:
			bSum += f.Bytes
			bN++
		}
	}
	if iN == 0 || pN == 0 || bN == 0 {
		t.Fatal("GOP did not produce all frame types")
	}
	if iSum/iN <= pSum/pN || pSum/pN <= bSum/bN {
		t.Errorf("size ordering violated: I=%d P=%d B=%d", iSum/iN, pSum/pN, bSum/bN)
	}
}

func TestVideoSourceValidation(t *testing.T) {
	if _, err := media.NewVideoSource("s", media.VideoConfig{FPS: 0, GOP: "I"}, 1); err == nil {
		t.Error("FPS 0 accepted")
	}
	if _, err := media.NewVideoSource("s", media.VideoConfig{FPS: 30, GOP: "BIP"}, 1); err == nil {
		t.Error("GOP not starting with I accepted")
	}
	if _, err := media.NewVideoSource("s", media.VideoConfig{FPS: 30, GOP: "IXB"}, 1); err == nil {
		t.Error("invalid GOP symbol accepted")
	}
}

func TestDecoderDecodesCleanStream(t *testing.T) {
	src, _ := media.NewVideoSource("src", media.DefaultVideoConfig(), 36)
	dec := media.NewDecoder("dec", 0)
	display := media.NewDisplay("display")
	runToEnd(t, []core.Stage{
		core.Comp(src),
		core.Comp(dec),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(display),
	})
	if got := display.Frames(); got != 36 {
		t.Fatalf("displayed %d frames, want 36 (no losses)", got)
	}
	if dec.Undecodable() != 0 {
		t.Errorf("undecodable = %d, want 0 on clean stream", dec.Undecodable())
	}
	if dec.Decoded() != 36 {
		t.Errorf("decoded = %d, want 36", dec.Decoded())
	}
}

func TestDecoderDropsDependentFrames(t *testing.T) {
	// Dropping all I frames upstream makes every P/B undecodable.
	src, _ := media.NewVideoSource("src", media.DefaultVideoConfig(), 24)
	killI := pipes.NewDropFilter("killI", func(it *item.Item, level int) bool {
		return it.AttrString(media.AttrFrameType) == "I"
	})
	dec := media.NewDecoder("dec", 0)
	display := media.NewDisplay("display")
	runToEnd(t, []core.Stage{
		core.Comp(src),
		core.Comp(killI),
		core.Comp(dec),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(display),
	})
	if got := display.Frames(); got != 0 {
		t.Fatalf("displayed %d frames, want 0 (all refs lost)", got)
	}
	if dec.Undecodable() == 0 {
		t.Error("expected undecodable frames")
	}
}

func TestPriorityDropPolicyLevels(t *testing.T) {
	mk := func(ft string) *item.Item {
		return item.New(nil, 1, time.Time{}).WithAttr(media.AttrFrameType, ft)
	}
	cases := []struct {
		ft    string
		level int
		drop  bool
	}{
		{"I", 0, false}, {"P", 0, false}, {"B", 0, false},
		{"I", 1, false}, {"P", 1, false}, {"B", 1, true},
		{"I", 2, false}, {"P", 2, true}, {"B", 2, true},
		{"I", 3, true}, {"P", 3, true}, {"B", 3, true},
	}
	for _, c := range cases {
		if got := media.PriorityDropPolicy(mk(c.ft), c.level); got != c.drop {
			t.Errorf("PriorityDropPolicy(%s, %d) = %v, want %v", c.ft, c.level, got, c.drop)
		}
	}
}

func TestPriorityDroppingPreservesIFrames(t *testing.T) {
	// E9 core property: at drop level 1, B frames vanish but every I and P
	// frame survives and remains decodable.
	src, _ := media.NewVideoSource("src", media.DefaultVideoConfig(), 60)
	drop := pipes.NewDropFilter("drop", media.PriorityDropPolicy)
	drop.SetLevel(1)
	dec := media.NewDecoder("dec", 0)
	display := media.NewDisplay("display")
	runToEnd(t, []core.Stage{
		core.Comp(src),
		core.Comp(drop),
		core.Comp(dec),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(display),
	})
	if got := display.FramesByType(media.FrameB); got != 0 {
		t.Errorf("B frames displayed = %d, want 0 at level 1", got)
	}
	// 60 frames of IBBPBBPBBPBB = 5 I + 15 P per 60... pattern has 1 I, 3 P,
	// 8 B per 12 frames: 5 GOPs -> 5 I, 15 P, 40 B.
	if got := display.FramesByType(media.FrameI); got != 5 {
		t.Errorf("I frames displayed = %d, want 5", got)
	}
	if got := display.FramesByType(media.FrameP); got != 15 {
		t.Errorf("P frames displayed = %d, want 15", got)
	}
	if dec.Undecodable() != 0 {
		t.Errorf("undecodable = %d, want 0 (I/P chain intact)", dec.Undecodable())
	}
}

func TestDecoderCostAdvancesClock(t *testing.T) {
	src, _ := media.NewVideoSource("src", media.VideoConfig{
		FPS: 30, GOP: "I", ISize: 1024, Seed: 1,
	}, 10)
	dec := media.NewDecoder("dec", 2*time.Millisecond) // 2ms per KB = 2ms per frame
	display := media.NewDisplay("display")
	s := uthread.New()
	start := s.Now()
	p, err := core.Compose("cost", s, nil, []core.Stage{
		core.Comp(src), core.Comp(dec),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(display),
	})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	elapsed := s.Now().Sub(start)
	if elapsed < 20*time.Millisecond {
		t.Errorf("virtual elapsed %v, want >= 20ms of decode cost", elapsed)
	}
}

func TestDisplayResizeEvent(t *testing.T) {
	src, _ := media.NewVideoSource("src", media.DefaultVideoConfig(), 12)
	dec := media.NewDecoder("dec", 0)
	display := media.NewDisplay("display")
	s := uthread.New()
	p, err := core.Compose("resize", s, nil, []core.Stage{
		core.Comp(src), core.Comp(dec),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(display),
	})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	p.Bus().Broadcast(events.Event{Type: events.Resize, Data: 640, Target: "display"})
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := display.Width(); got != 640 {
		t.Errorf("display width = %d, want 640", got)
	}
}

func TestMidiPipeline(t *testing.T) {
	src := media.NewMidiSource("src", 1, 42, 100)
	sink := media.NewMidiSink("sink")
	runToEnd(t, []core.Stage{
		*src,
		core.Comp(media.NewTranspose("t1", 12)),
		core.Comp(media.NewVelocityScale("v1", 0.5)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(sink),
	})
	if got := sink.Count(); got != 100 {
		t.Fatalf("sink received %d events, want 100", got)
	}
	if sink.Checksum() == 0 {
		t.Error("checksum empty")
	}
}

func TestMidiTransposeClamping(t *testing.T) {
	src := media.NewMidiSource("src", 1, 7, 50)
	sink := media.NewMidiSink("sink")
	runToEnd(t, []core.Stage{
		*src,
		core.Comp(media.NewTranspose("up", 120)), // clamps at 127
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(sink),
	})
	if got := sink.Count(); got != 50 {
		t.Fatalf("sink received %d events, want 50", got)
	}
}
