package netpipe

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"infopipes/internal/item"
)

// This file implements the hand-rolled binary wire codec that replaces gob
// on the marshalling hot path.  Gob spends most of its per-item budget
// re-emitting type descriptors and reflecting over the payload; for the
// payloads that actually cross netpipes (media frames, MIDI events, byte
// slices, scalars) a length-prefixed binary layout with pooled scratch
// buffers encodes in a handful of allocations.  Exotic payloads fall back
// to gob — either self-contained per item (loss-tolerant, the default) or
// as one streaming encoder per connection, which sends type descriptors
// once instead of per item and therefore requires a reliable, ordered
// transport such as TCP.

// Wire-format tags discriminating the three frame encodings.
const (
	wireBinary byte = 'B' // hand-rolled binary layout, self-contained
	wireGobOne byte = 'G' // self-contained gob (one encoder per item)
	wireGobStr byte = 'S' // chunk of a per-connection gob stream
)

// Attribute/payload scalar type codes used by the binary layout.
const (
	binNil    byte = 0
	binBytes  byte = 1
	binString byte = 2
	binInt64  byte = 3
	binInt    byte = 4
	binFloat  byte = 5
	binBool   byte = 6
	// binCustomBase is the first payload code available to codecs installed
	// with RegisterBinaryPayload.
	binCustomBase byte = 32
)

// PayloadAppender appends the binary encoding of v to dst.
type PayloadAppender func(dst []byte, v any) []byte

// PayloadParser decodes a payload produced by the matching appender,
// returning the value and the unconsumed remainder of src.
type PayloadParser func(src []byte) (v any, rest []byte, err error)

// binCodec is one registered payload codec.
type binCodec struct {
	id     byte
	append PayloadAppender
	parse  PayloadParser
}

var (
	binMu      sync.RWMutex
	binByType  = map[reflect.Type]*binCodec{}
	binByID    [256]*binCodec
	errBinSkip = fmt.Errorf("netpipe: payload not binary-codable")
)

// RegisterBinaryPayload installs a binary codec for the concrete type of
// prototype under the given code (>= 32).  Both peers of a link must
// register the same codecs; unregistered payload types transparently fall
// back to gob.  Re-registering a code or type replaces the previous codec.
func RegisterBinaryPayload(code byte, prototype any, app PayloadAppender, parse PayloadParser) {
	if code < binCustomBase {
		panic(fmt.Sprintf("netpipe: RegisterBinaryPayload code %d is reserved (must be >= %d)", code, binCustomBase))
	}
	c := &binCodec{id: code, append: app, parse: parse}
	binMu.Lock()
	binByType[reflect.TypeOf(prototype)] = c
	binByID[code] = c
	binMu.Unlock()
}

// lookupByType finds the codec for v's concrete type, or nil.
func lookupByType(v any) *binCodec {
	binMu.RLock()
	c := binByType[reflect.TypeOf(v)]
	binMu.RUnlock()
	return c
}

// lookupByID finds the codec for a wire code, or nil.
func lookupByID(id byte) *binCodec {
	binMu.RLock()
	c := binByID[id]
	binMu.RUnlock()
	return c
}

// ---------------------------------------------------------- scratch pools

// scratchPool recycles marshal scratch buffers so encoding allocates only
// the final exact-size output slice.
var scratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// bufferPool recycles bytes.Buffers for the self-contained gob fallback.
var bufferPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ------------------------------------------------------- field primitives

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func parseUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("netpipe: binary decode: truncated uvarint")
	}
	return v, src[n:], nil
}

func parseVarint(src []byte) (int64, []byte, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("netpipe: binary decode: truncated varint")
	}
	return v, src[n:], nil
}

func parseBytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := parseUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("netpipe: binary decode: truncated bytes (want %d, have %d)", n, len(rest))
	}
	return rest[:n:n], rest[n:], nil
}

func parseString(src []byte) (string, []byte, error) {
	b, rest, err := parseBytes(src)
	return string(b), rest, err
}

// appendValue appends one scalar/bytes value with its type code, or reports
// that the value needs the gob fallback.
func appendValue(dst []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(dst, binNil), true
	case []byte:
		return appendBytes(append(dst, binBytes), x), true
	case string:
		return appendString(append(dst, binString), x), true
	case int64:
		return appendVarint(append(dst, binInt64), x), true
	case int:
		return appendVarint(append(dst, binInt), int64(x)), true
	case float64:
		return binary.BigEndian.AppendUint64(append(dst, binFloat), math.Float64bits(x)), true
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, binBool, b), true
	}
	if c := lookupByType(v); c != nil {
		return c.append(append(dst, c.id), v), true
	}
	return dst, false
}

// parseValue decodes one value written by appendValue.
func parseValue(src []byte) (any, []byte, error) {
	if len(src) == 0 {
		return nil, nil, fmt.Errorf("netpipe: binary decode: missing value code")
	}
	code, rest := src[0], src[1:]
	switch code {
	case binNil:
		return nil, rest, nil
	case binBytes:
		return parseBytesAny(rest)
	case binString:
		s, rest, err := parseString(rest)
		return s, rest, err
	case binInt64:
		v, rest, err := parseVarint(rest)
		return v, rest, err
	case binInt:
		v, rest, err := parseVarint(rest)
		return int(v), rest, err
	case binFloat:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("netpipe: binary decode: truncated float64")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(rest)), rest[8:], nil
	case binBool:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("netpipe: binary decode: truncated bool")
		}
		return rest[0] != 0, rest[1:], nil
	}
	if c := lookupByID(code); c != nil {
		return c.parse(rest)
	}
	return nil, nil, fmt.Errorf("netpipe: binary decode: unknown payload code %d (peer registered a codec this side lacks?)", code)
}

func parseBytesAny(src []byte) (any, []byte, error) {
	b, rest, err := parseBytes(src)
	if err != nil {
		return nil, nil, err
	}
	return b, rest, nil
}

// ---------------------------------------------------------- the marshaller

// BinaryMarshaller is the default wire codec: a length-prefixed binary
// layout for the common payloads with pooled scratch buffers, falling back
// to gob for payload or attribute types it cannot encode.  Construct with
// NewBinaryMarshaller (self-contained gob fallback, safe on lossy links) or
// NewStreamingBinaryMarshaller (one gob stream per connection — type
// descriptors cross the wire once, but frames must arrive reliably and in
// order, e.g. over TCP).  A marshaller instance belongs to one link
// direction; the decode side understands all three frame encodings
// regardless of which constructor built it.
type BinaryMarshaller struct {
	stream bool

	encMu  sync.Mutex
	encBuf bytes.Buffer
	genc   *gob.Encoder

	decMu  sync.Mutex
	decBuf bytes.Buffer
	gdec   *gob.Decoder
}

var _ Marshaller = (*BinaryMarshaller)(nil)

// NewBinaryMarshaller returns a binary codec whose gob fallback is
// self-contained per item: any frame can be decoded in isolation, so lossy
// links (SimLink with LossProb > 0) stay safe even for exotic payloads.
func NewBinaryMarshaller() *BinaryMarshaller {
	return &BinaryMarshaller{}
}

// NewStreamingBinaryMarshaller returns a binary codec whose gob fallback
// shares one encoder for the life of the marshaller, so gob type
// descriptors are transmitted once per connection instead of once per item.
// Use it on reliable, ordered links (TCP); on a lossy link a dropped
// fallback frame would desynchronise the peer's decoder.
func NewStreamingBinaryMarshaller() *BinaryMarshaller {
	return &BinaryMarshaller{stream: true}
}

// Marshal implements Marshaller.
//
//ipvet:hotpath per-item wire encoding on the send side
func (m *BinaryMarshaller) Marshal(it *item.Item) ([]byte, error) {
	sp := scratchPool.Get().(*[]byte)
	buf, err := m.appendItem((*sp)[:0], it)
	if err == nil {
		//ipvet:allow hotalloc the Marshaller contract hands the frame to the caller; one owned slice per frame is the interface's floor
		out := make([]byte, len(buf))
		copy(out, buf)
		*sp = buf[:0]
		scratchPool.Put(sp)
		return out, nil
	}
	*sp = (*sp)[:0]
	scratchPool.Put(sp)
	if err != errBinSkip {
		return nil, err
	}
	return m.marshalFallback(it)
}

// appendItem appends the binary encoding of it, or errBinSkip when a
// payload or attribute type needs the gob fallback.
//
//ipvet:hotpath binary encoder body; appends into a pooled scratch buffer
func (m *BinaryMarshaller) appendItem(dst []byte, it *item.Item) ([]byte, error) {
	dst = append(dst, wireBinary)
	dst = appendVarint(dst, it.Seq)
	// One flags byte: bit 0 = timestamp follows, bit 1 = merge origin
	// follows.  Items that never crossed a merge (Origin == 0) keep the
	// pre-origin encoding byte-for-byte.
	flag := byte(0)
	if !it.Created.IsZero() {
		flag |= 1
	}
	if it.Origin != 0 {
		flag |= 2
	}
	dst = append(dst, flag)
	if flag&1 != 0 {
		dst = binary.BigEndian.AppendUint64(dst, uint64(it.Created.UnixNano()))
	}
	if flag&2 != 0 {
		dst = appendVarint(dst, it.Origin)
	}
	dst = appendUvarint(dst, uint64(it.Size))
	dst = appendUvarint(dst, uint64(len(it.Attrs)))
	for k, v := range it.Attrs {
		dst = appendString(dst, k)
		var ok bool
		if dst, ok = appendValue(dst, v); !ok {
			return nil, errBinSkip
		}
	}
	var ok bool
	if dst, ok = appendValue(dst, it.Payload); !ok {
		return nil, errBinSkip
	}
	return dst, nil
}

// marshalFallback gob-encodes the item, streaming or self-contained.
func (m *BinaryMarshaller) marshalFallback(it *item.Item) ([]byte, error) {
	w := wireItem{Seq: it.Seq, Origin: it.Origin, Created: it.Created, Size: it.Size, Attrs: it.Attrs, Payload: it.Payload}
	if m.stream {
		m.encMu.Lock()
		defer m.encMu.Unlock()
		if m.genc == nil {
			m.genc = gob.NewEncoder(&m.encBuf)
		}
		m.encBuf.Reset()
		if err := m.genc.Encode(&w); err != nil {
			return nil, fmt.Errorf("netpipe: marshal item seq %d: %w", it.Seq, err)
		}
		out := make([]byte, 1+m.encBuf.Len())
		out[0] = wireGobStr
		copy(out[1:], m.encBuf.Bytes())
		return out, nil
	}
	buf := bufferPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteByte(wireGobOne)
	if err := gob.NewEncoder(buf).Encode(&w); err != nil {
		bufferPool.Put(buf)
		return nil, fmt.Errorf("netpipe: marshal item seq %d: %w", it.Seq, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	bufferPool.Put(buf)
	return out, nil
}

// Unmarshal implements Marshaller.
//
//ipvet:hotpath per-item wire decoding on the receive side
func (m *BinaryMarshaller) Unmarshal(data []byte) (*item.Item, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("netpipe: unmarshal: empty frame") //ipvet:allow hotalloc malformed-frame error path
	}
	switch data[0] {
	case wireBinary:
		return parseItem(data[1:])
	case wireGobOne:
		var w wireItem
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&w); err != nil {
			return nil, fmt.Errorf("netpipe: unmarshal: %w", err) //ipvet:allow hotalloc malformed-frame error path
		}
		return itemFromWire(&w), nil
	case wireGobStr:
		m.decMu.Lock()
		defer m.decMu.Unlock()
		if m.gdec == nil {
			m.gdec = gob.NewDecoder(&m.decBuf)
		}
		m.decBuf.Write(data[1:])
		var w wireItem
		if err := m.gdec.Decode(&w); err != nil {
			return nil, fmt.Errorf("netpipe: unmarshal (gob stream): %w", err) //ipvet:allow hotalloc malformed-frame error path
		}
		return itemFromWire(&w), nil
	default:
		return nil, fmt.Errorf("netpipe: unmarshal: unknown frame encoding %#x", data[0]) //ipvet:allow hotalloc malformed-frame error path
	}
}

// parseItem decodes a wireBinary body into a pooled item.
//
//ipvet:hotpath binary decoder body; fills a freelist item in place
func parseItem(src []byte) (*item.Item, error) {
	seq, src, err := parseVarint(src)
	if err != nil {
		return nil, err
	}
	var created time.Time
	if len(src) == 0 {
		return nil, fmt.Errorf("netpipe: binary decode: truncated time flag") //ipvet:allow hotalloc malformed-frame error path
	}
	flag := src[0]
	src = src[1:]
	if flag&1 != 0 {
		if len(src) < 8 {
			return nil, fmt.Errorf("netpipe: binary decode: truncated timestamp") //ipvet:allow hotalloc malformed-frame error path
		}
		created = time.Unix(0, int64(binary.BigEndian.Uint64(src)))
		src = src[8:]
	}
	var origin int64
	if flag&2 != 0 {
		if origin, src, err = parseVarint(src); err != nil {
			return nil, err
		}
	}
	size, src, err := parseUvarint(src)
	if err != nil {
		return nil, err
	}
	nattrs, src, err := parseUvarint(src)
	if err != nil {
		return nil, err
	}
	it := item.New(nil, seq, created).WithSize(int(size))
	it.Origin = origin
	for i := uint64(0); i < nattrs; i++ {
		var k string
		if k, src, err = parseString(src); err != nil {
			it.Recycle()
			return nil, err
		}
		var v any
		if v, src, err = parseValue(src); err != nil {
			it.Recycle()
			return nil, err
		}
		it.SetAttr(k, v)
	}
	payload, _, err := parseValue(src)
	if err != nil {
		it.Recycle()
		return nil, err
	}
	it.Payload = payload
	return it, nil
}

// itemFromWire converts a gob wireItem into a pooled item.
func itemFromWire(w *wireItem) *item.Item {
	it := item.New(w.Payload, w.Seq, w.Created).WithSize(w.Size)
	it.Origin = w.Origin
	it.Attrs = w.Attrs
	return it
}
