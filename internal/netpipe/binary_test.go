package netpipe

import (
	"testing"
	"time"

	"infopipes/internal/item"
	"infopipes/internal/media"
)

var bt0 = time.Date(2001, 11, 12, 13, 14, 15, 161718, time.UTC)

func roundTrip(t *testing.T, m Marshaller, it *item.Item) *item.Item {
	t.Helper()
	data, err := m.Marshal(it)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := m.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestBinaryRoundTripFrame(t *testing.T) {
	m := NewBinaryMarshaller()
	f := &media.Frame{Type: media.FrameP, Seq: 42, PTS: 350 * time.Millisecond,
		Bytes: 6000, Refs: []int64{40, 37}, Decoded: false}
	it := item.New(f, 42, bt0).WithSize(6000).WithAttr("frametype", "P").WithAttr("prio", 3)
	got := roundTrip(t, m, it)
	if got.Seq != 42 || !got.Created.Equal(bt0) || got.Size != 6000 {
		t.Errorf("header fields wrong: %+v", got)
	}
	gf, ok := got.Payload.(*media.Frame)
	if !ok {
		t.Fatalf("payload is %T, want *media.Frame", got.Payload)
	}
	if gf.Type != media.FrameP || gf.Seq != 42 || gf.PTS != 350*time.Millisecond ||
		gf.Bytes != 6000 || len(gf.Refs) != 2 || gf.Refs[0] != 40 || gf.Refs[1] != 37 || gf.Decoded {
		t.Errorf("frame fields wrong: %+v", gf)
	}
	if got.AttrString("frametype") != "P" || got.AttrInt("prio") != 3 {
		t.Errorf("attrs wrong: %v", got.Attrs)
	}
}

func TestBinaryRoundTripScalars(t *testing.T) {
	m := NewBinaryMarshaller()
	cases := []any{
		nil,
		[]byte{1, 2, 3},
		"hello",
		int64(-77),
		int(12345),
		3.25,
		true,
		&media.MidiEvent{Channel: 3, Note: 64, Velocity: 100},
	}
	for _, payload := range cases {
		it := item.New(payload, 1, time.Time{})
		got := roundTrip(t, m, it)
		switch want := payload.(type) {
		case nil:
			if got.Payload != nil {
				t.Errorf("nil payload became %v", got.Payload)
			}
		case []byte:
			gb, ok := got.Payload.([]byte)
			if !ok || string(gb) != string(want) {
				t.Errorf("bytes payload became %v", got.Payload)
			}
		case *media.MidiEvent:
			ge, ok := got.Payload.(*media.MidiEvent)
			if !ok || *ge != *want {
				t.Errorf("midi payload became %v", got.Payload)
			}
		default:
			if got.Payload != payload {
				t.Errorf("payload %v (%T) became %v (%T)", payload, payload, got.Payload, got.Payload)
			}
		}
		if !got.Created.IsZero() {
			t.Errorf("zero Created became %v", got.Created)
		}
	}
}

// exoticPayload has no binary codec, forcing the gob fallback.
type exoticPayload struct {
	Name string
	N    int
}

func TestBinaryGobFallbackSelfContained(t *testing.T) {
	RegisterPayload(exoticPayload{})
	m := NewBinaryMarshaller()
	it := item.New(exoticPayload{Name: "x", N: 9}, 7, bt0).WithSize(11)
	data, err := m.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != wireGobOne {
		t.Fatalf("fallback frame tag = %#x, want %#x", data[0], wireGobOne)
	}
	// Self-contained frames must decode on a fresh marshaller (loss safety).
	got, err := NewBinaryMarshaller().Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := got.Payload.(exoticPayload); !ok || p.Name != "x" || p.N != 9 {
		t.Errorf("payload became %v (%T)", got.Payload, got.Payload)
	}
	if got.Seq != 7 || got.Size != 11 {
		t.Errorf("header wrong: %+v", got)
	}
}

func TestBinaryGobFallbackStreaming(t *testing.T) {
	RegisterPayload(exoticPayload{})
	enc := NewStreamingBinaryMarshaller()
	dec := NewBinaryMarshaller() // decode side understands all encodings
	var frames [][]byte
	for i := 1; i <= 3; i++ {
		it := item.New(exoticPayload{Name: "s", N: i}, int64(i), bt0)
		data, err := enc.Marshal(it)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != wireGobStr {
			t.Fatalf("frame %d tag = %#x, want %#x", i, data[0], wireGobStr)
		}
		frames = append(frames, data)
	}
	// Type descriptors ride only in the first frame: later ones are smaller.
	if len(frames[1]) >= len(frames[0]) {
		t.Errorf("second frame (%dB) not smaller than first (%dB): descriptors resent?",
			len(frames[1]), len(frames[0]))
	}
	for i, data := range frames {
		got, err := dec.Unmarshal(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p, ok := got.Payload.(exoticPayload); !ok || p.N != i+1 {
			t.Errorf("frame %d payload became %v", i, got.Payload)
		}
	}
}

func TestBinaryMixedFallbackAndFastPath(t *testing.T) {
	// A flow can interleave binary-codable and exotic payloads freely.
	RegisterPayload(exoticPayload{})
	enc := NewStreamingBinaryMarshaller()
	dec := NewBinaryMarshaller()
	payloads := []any{int64(1), exoticPayload{N: 2}, "three", exoticPayload{N: 4}}
	for i, p := range payloads {
		got := roundTripVia(t, enc, dec, item.New(p, int64(i), time.Time{}))
		if ep, ok := p.(exoticPayload); ok {
			if gp, ok2 := got.Payload.(exoticPayload); !ok2 || gp.N != ep.N {
				t.Errorf("payload %d became %v", i, got.Payload)
			}
		} else if got.Payload != p {
			t.Errorf("payload %d became %v", i, got.Payload)
		}
	}
}

func roundTripVia(t *testing.T, enc, dec Marshaller, it *item.Item) *item.Item {
	t.Helper()
	data, err := enc.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestBinaryUnmarshalErrors(t *testing.T) {
	m := NewBinaryMarshaller()
	if _, err := m.Unmarshal(nil); err == nil {
		t.Error("empty frame must fail")
	}
	if _, err := m.Unmarshal([]byte{0xFF, 1, 2}); err == nil {
		t.Error("unknown encoding must fail")
	}
	if _, err := m.Unmarshal([]byte{wireBinary}); err == nil {
		t.Error("truncated binary frame must fail")
	}
}

// TestMarshalAllocs guards the hot-path allocation budget: a frame item
// round trip through the binary codec must stay an order of magnitude under
// the gob baseline (~277 allocs at seed).
func TestMarshalAllocs(t *testing.T) {
	m := NewBinaryMarshaller()
	f := &media.Frame{Type: media.FrameI, Seq: 1, Bytes: 12000}
	it := item.New(f, 1, time.Time{}).WithSize(12000).WithAttr("frametype", "I")
	marshalOnly := testing.AllocsPerRun(200, func() {
		data, err := m.Marshal(it)
		if err != nil {
			t.Fatal(err)
		}
		_ = data
	})
	if marshalOnly > 2 {
		t.Errorf("Marshal allocates %v/op, want <= 2 (output slice)", marshalOnly)
	}
	roundTrip := testing.AllocsPerRun(200, func() {
		data, err := m.Marshal(it)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		out.Recycle()
	})
	if roundTrip > 12 {
		t.Errorf("round trip allocates %v/op, want <= 12", roundTrip)
	}
}

func TestEncodeFrameReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	payload := []byte("abc")
	got := testing.AllocsPerRun(100, func() {
		buf = encodeFrame(buf[:0], frameData, payload)
	})
	if got != 0 {
		t.Errorf("encodeFrame into a sized buffer allocated %v/op", got)
	}
	if len(buf) != 5+len(payload) || buf[4] != frameData || string(buf[5:]) != "abc" {
		t.Errorf("frame layout wrong: %v", buf)
	}
}
