package netpipe

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Chaos is a seeded, deterministic fault injector for TCP lanes: it wraps a
// connection's producer side and misbehaves per frame (every TCPLink write
// is exactly one frame, so per-write decisions are per-frame decisions).
// The faults model what real TCP can do to a lane:
//
//   - drop: the frame is swallowed and the connection severed — the tail of
//     a stream lost inside a dying socket.  Durable lanes recover it from
//     the journal after a Redial.
//   - dup: the frame is written twice — a replay overlap.  The receiver's
//     dedup watermark must drop the second copy.
//   - delay: the frame is written after a bounded, seeded pause.
//   - stall: writes freeze for a window (a short partition), then heal.
//   - kill: half the frame's bytes are written, then the connection is
//     severed — the receiver sees a short read mid-frame, which must park
//     the lane, not terminate the stream.
//
// All decisions come from one seeded PRNG, so a failing run replays
// identically from its seed.
type Chaos struct {
	// OneIn frequencies: a fault fires when rng.Intn(N) == 0; zero disables
	// that fault.
	DropOneIn  int
	DupOneIn   int
	DelayOneIn int
	StallOneIn int
	KillOneIn  int

	MaxDelay time.Duration // per-frame delay bound (default 2ms)
	StallFor time.Duration // partition window (default 20ms)
}

// ChaosStats counts the faults a chaos connection actually injected.
type ChaosStats struct {
	Writes, Drops, Dups, Delays, Stalls, Kills int64
}

// ChaosConn wraps a net.Conn with seeded per-frame fault injection on the
// write side; reads pass through untouched.
type ChaosConn struct {
	net.Conn
	cfg Chaos

	mu      sync.Mutex
	rng     *rand.Rand
	stats   ChaosStats
	severed bool
	closed  chan struct{}
}

// NewChaosConn wraps conn; all faults draw from the given seed.
func NewChaosConn(conn net.Conn, seed int64, cfg Chaos) *ChaosConn {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = 20 * time.Millisecond
	}
	return &ChaosConn{
		Conn:   conn,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
}

// ChaosDial dials addr and wraps the connection.
func ChaosDial(addr string, seed int64, cfg Chaos) (*ChaosConn, error) {
	conn, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewChaosConn(conn, seed, cfg), nil
}

// Stats snapshots the injected-fault counters.
func (c *ChaosConn) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Severed reports whether a drop/kill fault tore the connection down.
func (c *ChaosConn) Severed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed
}

// Close implements net.Conn, additionally interrupting a stall in progress.
func (c *ChaosConn) Close() error {
	c.mu.Lock()
	if !c.severed {
		c.severed = true
		close(c.closed)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// sever tears the underlying connection down without marking the wrapper
// closed by the user: subsequent writes fail like on a broken socket.
func (c *ChaosConn) severLocked() {
	if !c.severed {
		c.severed = true
		close(c.closed)
	}
	c.Conn.Close()
}

// roll draws one fault decision; must hold c.mu.
func (c *ChaosConn) roll(oneIn int) bool {
	return oneIn > 0 && c.rng.Intn(oneIn) == 0
}

// Write implements net.Conn with per-frame fault injection.
func (c *ChaosConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return 0, fmt.Errorf("netpipe: chaos: connection severed")
	}
	c.stats.Writes++
	drop := c.roll(c.cfg.DropOneIn)
	dup := !drop && c.roll(c.cfg.DupOneIn)
	delay := time.Duration(0)
	if !drop && c.roll(c.cfg.DelayOneIn) {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
		c.stats.Delays++
	}
	stall := !drop && c.roll(c.cfg.StallOneIn)
	kill := !drop && !dup && c.roll(c.cfg.KillOneIn)
	if drop {
		c.stats.Drops++
		c.severLocked()
		c.mu.Unlock()
		// The frame vanished inside the socket: report success, like a
		// kernel that buffered bytes the peer never got.
		return len(p), nil
	}
	if dup {
		c.stats.Dups++
	}
	if stall {
		c.stats.Stalls++
	}
	if kill {
		c.stats.Kills++
	}
	closed := c.closed
	c.mu.Unlock()

	if stall {
		select {
		//ipvet:allow wallclock fault injection stalls a real socket by design
		case <-time.After(c.cfg.StallFor):
		case <-closed:
			return 0, fmt.Errorf("netpipe: chaos: closed during stall")
		}
	}
	if delay > 0 {
		time.Sleep(delay) //ipvet:allow wallclock fault injection delays a real socket by design
	}
	if kill && len(p) > 1 {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.mu.Lock()
		c.severLocked()
		c.mu.Unlock()
		return n, fmt.Errorf("netpipe: chaos: killed mid-frame after %d bytes", n)
	}
	n, err := c.Conn.Write(p)
	if err != nil {
		return n, err
	}
	if dup {
		if _, derr := c.Conn.Write(p); derr != nil {
			return n, nil // the duplicate died with the conn; original stands
		}
	}
	return n, nil
}
