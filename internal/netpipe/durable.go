package netpipe

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/uthread"
)

// Durable lanes (§2.4 + failover): every data frame carries the item's
// origin-assigned sequence number, the sender keeps a bounded replay journal
// of unacknowledged frames, and the receiver acknowledges cumulatively over
// the same connection (TCP is full duplex) and drops re-delivered sequences.
// A Redial after a bare EOF — the peer crashed, or the segment behind it was
// re-placed — replays the journal, so the stream resumes with zero loss and
// zero duplication at the receiver boundary.
//
// Origin sequences make the protocol survive a *sender replacement*: when a
// failed segment is recomposed on another node, its fresh outbound link
// re-emits items that the stationary downstream listener may have already
// consumed; the listener's dedup watermark (an origin sequence) filters them
// regardless of which sender instance produced them.
//
// Merged flows: a merge interleaves its branches' sequence numbers, so a
// lane below one cannot journal on the bare sequence.  Each merge in-port
// stamps the item's Origin (see item.Item.Origin), and the lane keys its
// journal, acks and dedup on the (origin, seq) PAIR — monotone per origin by
// construction.  Origin-0 traffic (no merge upstream) keeps the origin-less
// wire frames byte-for-byte and the lock-free watermark fast paths;
// non-zero origins ride the origin-qualified frames and per-origin maps.

// DurableConfig tunes a durable lane endpoint.
type DurableConfig struct {
	// JournalLimit bounds the sender's replay journal (entries).  A full
	// journal blocks the sending pipeline — with control dispatch, so the
	// stage stays stoppable — until acks free space.  It is also the flow
	// window: the producer can run at most this far ahead of the consumer,
	// so an undersized journal couples the two schedulers and costs
	// throughput long before memory matters.  Default 4096.
	JournalLimit int
	// AckEvery makes the receiver acknowledge after every N consumed items
	// (an ack is also sent on reconnect handshake and at end of stream).
	// Each ack is a write syscall on the lane, and a smaller value only
	// tightens the re-delivery overlap a failover must dedup.  Default 64.
	AckEvery int
	// Chained marks a mid-segment listener: instead of acknowledging what
	// its own pipeline consumed, it forwards the downstream ack watermark
	// pushed in via PushAck, so the upstream journal covers everything not
	// yet consumed at the end of the chain.
	Chained bool
	// WriteTimeout bounds each frame write, so a partitioned peer parks the
	// connection instead of wedging the sender.  Default 5s.
	WriteTimeout time.Duration
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.JournalLimit <= 0 {
		c.JournalLimit = 4096
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 64
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	return c
}

// laneEntry is one journaled frame awaiting acknowledgement.  prio is the
// wire priority byte the frame was (and will be re-) sent with, so a replay
// after a Redial preserves the tenant's priority tag; origin is the item's
// merge provenance (0 on unmerged flows).
type laneEntry struct {
	origin int64
	seq    int64
	prio   byte
	data   []byte
}

// durable is the per-link durable-lane state, guarded by TCPLink.mu.
type durable struct {
	cfg DurableConfig

	// Sender half.
	journal   []laneEntry
	lastSent  int64 // highest origin-0 sequence handed to sendDurable
	sent      int64 // frames ever journaled, all origins — monotone
	acked     int64 // highest cumulative origin-0 ack received
	eosPend   bool  // EOS reached the sink; replay must re-send it
	eosSeq    int64
	eosAcked  bool
	replays   int64 // journal entries re-sent across all redials
	txWaiters core.WaiterList
	onAck     func(origin, seq int64) // fired outside the lock on every new ack
	// Per-origin sender watermarks for merged flows; nil until the first
	// non-zero origin crosses the lane, so unmerged flows never touch them.
	// Guarded by TCPLink.mu.
	lastSentO map[int64]int64
	ackedO    map[int64]int64
	// free recycles acknowledged journal buffers, so the steady state
	// journals without allocating; wdUntil is when the connection's write
	// deadline expires, so the deadline syscall is amortized over many
	// frames instead of paid per frame.  Both guarded by TCPLink.mu.
	free    [][]byte
	wdUntil time.Time

	// Receiver half.  dedup/dups are written only by the (single) reader
	// goroutine and ackAnchor only by the (single) consumer thread, so they
	// are atomics instead of taking TCPLink.mu on every frame; the rest is
	// guarded by TCPLink.mu.
	dedup       atomic.Int64 // highest origin-0 sequence injected into the inbox
	dups        atomic.Int64 // duplicate frames dropped
	eosSeen     bool         // a terminal frameEOSSeq arrived
	lastPopped  int64        // consumer-thread private
	lastPoppedO int64        // origin of the last popped frame, consumer-thread private
	ackAnchor   atomic.Int64 // previous popped origin-0 sequence — safe to ack (see popDurable)
	sinceAck    int          // consumer-thread private
	lastAck     int64        // highest origin-0 ack actually written
	chainAck    int64        // highest origin-0 watermark pushed via PushAck
	finalAcked  bool         // ackAll has been written (or pushed through)
	// Per-origin receiver watermarks for merged flows, nil until a non-zero
	// origin arrives.  origins lists the keys in first-seen order, so the
	// ack cadence and handshake iterate deterministically without sorting.
	// All guarded by TCPLink.mu (merged flows pay the lock; origin-0 keeps
	// the atomics above).
	dedupO    map[int64]int64
	anchorO   map[int64]int64
	lastAckO  map[int64]int64
	chainAckO map[int64]int64
	origins   []int64
}

// originSeen registers a receiver-side origin in first-seen order (l.mu
// held).  All three receiver maps share the origins index.
func (d *durable) originSeen(origin int64) {
	if d.dedupO == nil {
		d.dedupO = make(map[int64]int64)
		d.anchorO = make(map[int64]int64)
		d.lastAckO = make(map[int64]int64)
		d.chainAckO = make(map[int64]int64)
	}
	if _, ok := d.dedupO[origin]; !ok {
		d.dedupO[origin] = 0
		d.origins = append(d.origins, origin)
	}
}

// LaneStats is a point-in-time snapshot of a durable lane endpoint.
type LaneStats struct {
	Journaled  int   // unacknowledged entries in the sender journal
	LastSent   int64 // highest sequence sent
	Sent       int64 // frames ever journaled, across all origins (monotone)
	Acked      int64 // highest cumulative ack received (sender side)
	EOSPending bool  // sender saw EOS but the receiver has not confirmed it
	Parked     bool  // the connection is down; unreplayed entries are off the wire
	Dedup      int64 // receiver's highest injected origin sequence
	Dups       int64 // duplicate frames the receiver dropped
	Replays    int64 // journal entries re-sent across redials
}

// NewDurableTCPSenderLink wraps the producer side of an established
// connection with a replay journal, and starts the ack reader.
func NewDurableTCPSenderLink(conn net.Conn, cfg DurableConfig) *TCPLink {
	l := &TCPLink{conn: conn, dur: &durable{cfg: cfg.withDefaults()}}
	go l.ackLoop(conn)
	return l
}

// NewDurableTCPListenerLink is NewResumableTCPListenerLink with receiver-side
// durability: sequence dedup, cumulative acks, and a blocking inbox (a full
// queue exerts backpressure through TCP instead of dropping acked frames).
func NewDurableTCPListenerLink(addr string, rxSched *uthread.Scheduler, rxNode string, queueLimit int, cfg DurableConfig) (*TCPLink, string, error) {
	return newListenerLink(addr, rxSched, rxNode, queueLimit, true, &durable{cfg: cfg.withDefaults()})
}

// Durable reports whether the link runs the durable-lane protocol.
func (l *TCPLink) Durable() bool { return l.dur != nil }

// SetOnAck installs a callback fired (outside the link lock) whenever the
// sender receives a new cumulative ack (per origin; origin 0 on unmerged
// flows).  The graph layer uses it to chain acknowledgements backwards
// through a re-placeable segment.
func (l *TCPLink) SetOnAck(fn func(origin, seq int64)) {
	l.mu.Lock()
	l.dur.onAck = fn
	l.mu.Unlock()
}

// LaneStats snapshots the durable state; zero-valued on plain links.
func (l *TCPLink) LaneStats() LaneStats {
	if l.dur == nil {
		return LaneStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.dur
	return LaneStats{
		Journaled:  len(d.journal),
		LastSent:   d.lastSent,
		Sent:       d.sent,
		Acked:      d.acked,
		EOSPending: d.eosPend && !d.eosAcked,
		Parked:     l.conn == nil,
		Dedup:      d.dedup.Load(),
		Dups:       d.dups.Load(),
		Replays:    d.replays,
	}
}

// sendDurable journals one frame and puts it on the wire.  A full journal
// blocks (with control dispatch, mirroring shard links) until acks trim it;
// a detaching pipeline force-completes over the limit so teardown never
// deadlocks on a dead peer.  A write error parks the connection — the frame
// is journaled, a later Redial replays it — so the pipeline keeps producing
// into the journal while the lane is down.
func (l *TCPLink) sendDurable(ctx *core.Ctx, origin, seq int64, data []byte, prio uthread.Priority) error {
	detaching := ctx.Detaching
	return l.sendDurableWith(ctx.Thread(), ctx.Stopping, detaching, origin, seq, data, prio)
}

// never is the nil-callback fallback for sendDurableWith: package-level so
// the per-item send does not allocate a closure (caught by ipvet).
func never() bool { return false }

//ipvet:hotpath durable-lane send: journal append + framed write per item
func (l *TCPLink) sendDurableWith(t *uthread.Thread, stopping, detaching func() bool, origin, seq int64, data []byte, prio uthread.Priority) error {
	if stopping == nil {
		stopping = never
	}
	if detaching == nil {
		detaching = never
	}
	d := l.dur
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return core.ErrStopped
		}
		last := d.lastSent
		if origin != 0 {
			last = d.lastSentO[origin]
		}
		if seq <= last {
			l.mu.Unlock()
			//ipvet:allow hotalloc misuse error path, never taken in steady state
			return fmt.Errorf("netpipe: durable lane: origin %d sequence %d not above %d (durable lanes need per-origin monotone sequences)", origin, seq, last)
		}
		if len(d.journal) < d.cfg.JournalLimit || (stopping() && detaching()) {
			// Journal a copy (items are pooled; the payload buffer is
			// recycled by the caller), then attempt the wire.  The copy
			// reuses an acknowledged entry's buffer when one is free.
			var buf []byte
			if n := len(d.free); n > 0 {
				buf = d.free[n-1][:0]
				d.free = d.free[:n-1]
			}
			pb := byte(0) // 0 marks the untagged frame format (default priority)
			if prio != uthread.PriorityNormal {
				pb = prioByte(prio)
			}
			//ipvet:allow hotalloc journal copy reuses acked buffers; it allocates only until the free pool warms up
			d.journal = append(d.journal, laneEntry{origin: origin, seq: seq, prio: pb, data: append(buf, data...)})
			d.sent++
			if origin == 0 {
				d.lastSent = seq
			} else {
				if d.lastSentO == nil {
					//ipvet:allow hotalloc lazy per-origin watermark map; allocated once per lane when the first merged origin appears, not per frame
					d.lastSentO = make(map[int64]int64)
				}
				d.lastSentO[origin] = seq
			}
			_ = l.writeDataFrameLocked(pb, origin, seq, data)
			l.mu.Unlock()
			return nil
		}
		tok := d.txWaiters.Register(t)
		l.mu.Unlock()
		//ipvet:allow hotalloc journal-full park path; the thread blocks here, so the bound method is not per-item cost
		if err := core.AwaitWake(t, msgNetWake, tok, stopping, l.deregisterTx); err != nil {
			if detaching() {
				continue // force-complete: detach must not lose the item
			}
			return err
		}
	}
}

// sendEOSDurable records and transmits the terminal frame.  Idempotent.
func (l *TCPLink) sendEOSDurable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return core.ErrStopped
	}
	d := l.dur
	if d.eosAcked {
		return nil
	}
	if !d.eosPend {
		d.eosPend = true
		d.eosSeq = d.lastSent
	}
	// A write failure parks the connection with the EOS latched pending; the
	// replay after a Redial re-sends it, so this is not the pipeline's error.
	_ = l.writeSeqFrameLocked(frameEOSSeq, d.eosSeq, nil)
	return nil
}

// recycle keeps an acknowledged journal buffer for reuse (l.mu held).  The
// pool is bounded so a burst of large journals cannot pin memory forever.
//
//ipvet:hotpath journal buffer reuse; runs once per acknowledged frame
func (d *durable) recycle(buf []byte) {
	if buf != nil && len(d.free) < 64 {
		d.free = append(d.free, buf)
	}
}

// armWriteDeadlineLocked refreshes the connection's write deadline when
// less than half the configured timeout remains, so the deadline syscall
// is paid once per ~wt/2 of traffic, not once per frame.  The effective
// per-write bound stays within [wt/2, wt].  wdUntil is zeroed whenever
// l.conn changes, so a fresh connection is always armed.
//
//ipvet:hotpath runs under l.mu on every framed write
func (l *TCPLink) armWriteDeadlineLocked() {
	wt := l.dur.cfg.WriteTimeout
	if wt <= 0 {
		return
	}
	//ipvet:allow wallclock amortized write-deadline re-arm on a real socket
	if now := time.Now(); l.dur.wdUntil.Sub(now) < wt/2 {
		l.dur.wdUntil = now.Add(wt)
		_ = l.conn.SetWriteDeadline(l.dur.wdUntil)
	}
}

// writeSeqFrameLocked writes one sequence frame under l.mu, with the
// configured write deadline.  On error the connection is parked (closed and
// nilled) so the journal carries the stream until a Redial.
//
//ipvet:hotpath per-frame write; reuses the connection's transmit buffer
func (l *TCPLink) writeSeqFrameLocked(tag byte, seq int64, payload []byte) error {
	if l.conn == nil {
		return ErrNoConn
	}
	l.txBuf = encodeSeqFrame(l.txBuf[:0], tag, seq, payload)
	l.armWriteDeadlineLocked()
	if _, err := l.conn.Write(l.txBuf); err != nil {
		l.conn.Close()
		l.conn = nil
		l.dur.wdUntil = time.Time{}
		return err
	}
	return nil
}

// writeDataFrameLocked writes one durable data frame, choosing among the
// four durable formats: origin-less for unmerged flows (origin 0 — the wire
// stays byte-identical to a merge-unaware sender), origin-qualified below a
// merge, each untagged for default-priority traffic and priority-tagged
// otherwise.
//
//ipvet:hotpath per-frame durable data write
func (l *TCPLink) writeDataFrameLocked(prio byte, origin, seq int64, payload []byte) error {
	if origin == 0 && prio == 0 {
		return l.writeSeqFrameLocked(frameDataSeq, seq, payload)
	}
	if l.conn == nil {
		return ErrNoConn
	}
	switch {
	case origin == 0:
		l.txBuf = encodeSeqPrioFrame(l.txBuf[:0], frameDataSeqPrio, prio, seq, payload)
	case prio == 0:
		l.txBuf = encodeOSeqFrame(l.txBuf[:0], frameDataOSeq, origin, seq, payload)
	default:
		l.txBuf = encodeOSeqPrioFrame(l.txBuf[:0], frameDataOSeqPrio, prio, origin, seq, payload)
	}
	l.armWriteDeadlineLocked()
	if _, err := l.conn.Write(l.txBuf); err != nil {
		l.conn.Close()
		l.conn = nil
		l.dur.wdUntil = time.Time{}
		return err
	}
	return nil
}

// writeAckLocked writes a cumulative origin-0 ack on the receiver's
// connection, reporting success.  Failures are left for the reconnect
// handshake.
//
//ipvet:hotpath ack write; runs once per consumed item on the receiver
func (l *TCPLink) writeAckLocked(seq int64) bool {
	if l.conn == nil {
		return false
	}
	l.txBuf = encodeSeqFrame(l.txBuf[:0], frameAck, seq, nil)
	l.armWriteDeadlineLocked()
	_, err := l.conn.Write(l.txBuf)
	return err == nil
}

// writeAckOLocked writes a cumulative per-origin ack, reporting success.
//
//ipvet:hotpath per-origin ack write on the receiver's ack cadence
func (l *TCPLink) writeAckOLocked(origin, seq int64) bool {
	if l.conn == nil {
		return false
	}
	l.txBuf = encodeOSeqFrame(l.txBuf[:0], frameAckO, origin, seq, nil)
	l.armWriteDeadlineLocked()
	_, err := l.conn.Write(l.txBuf)
	return err == nil
}

// writeHandshakeLocked re-announces the consumed watermarks to a
// (re)connecting sender, so it trims its journal before replaying: the
// origin-0 watermark (or the global terminal ackAll), then one per-origin
// ack for every origin this receiver has seen.
func (l *TCPLink) writeHandshakeLocked() {
	d := l.dur
	if d.finalAcked {
		l.writeAckLocked(ackAll)
		return
	}
	if d.cfg.Chained {
		l.writeAckLocked(d.chainAck)
		for _, o := range d.origins {
			if w := d.chainAckO[o]; w > 0 {
				l.writeAckOLocked(o, w)
			}
		}
		return
	}
	l.writeAckLocked(d.ackAnchor.Load())
	for _, o := range d.origins {
		if w := d.anchorO[o]; w > 0 {
			l.writeAckOLocked(o, w)
		}
	}
}

// ackLoop reads cumulative acks off a sender connection until it dies.
func (l *TCPLink) ackLoop(conn net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > 64<<20 {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		switch {
		case body[0] == frameAck && len(body) >= 9:
			l.applyAck(0, int64(binary.BigEndian.Uint64(body[1:9])))
		case body[0] == frameAckO && len(body) >= 17:
			l.applyAck(int64(binary.BigEndian.Uint64(body[1:9])), int64(binary.BigEndian.Uint64(body[9:17])))
		}
	}
}

// applyAck trims the journal up to a cumulative per-origin ack and wakes
// blocked senders.  ackAll (always origin 0) confirms the EOS too, emptying
// the journal.
//
//ipvet:hotpath journal trim; runs on every ack the sender receives
func (l *TCPLink) applyAck(origin, seq int64) {
	d := l.dur
	l.mu.Lock()
	switch {
	case origin == 0 && seq == ackAll:
		d.eosAcked = true
		d.acked = d.lastSent
		for o, s := range d.lastSentO {
			d.ackedO[o] = s
		}
		for i := range d.journal {
			d.recycle(d.journal[i].data)
			d.journal[i] = laneEntry{}
		}
		d.journal = d.journal[:0]
	case origin == 0 && seq > d.acked:
		d.acked = seq
		if d.lastSentO == nil {
			// Unmerged flow: the journal is sorted by seq, so the trim is a
			// prefix cut that stops at the first unacknowledged entry.
			i := 0
			for i < len(d.journal) && d.journal[i].seq <= seq {
				d.recycle(d.journal[i].data)
				i++
			}
			if i > 0 {
				n := copy(d.journal, d.journal[i:])
				for j := n; j < len(d.journal); j++ {
					d.journal[j] = laneEntry{}
				}
				d.journal = d.journal[:n]
			}
		} else {
			d.trimJournalLocked()
		}
	case origin != 0 && seq > d.ackedO[origin]:
		if d.ackedO == nil {
			//ipvet:allow hotalloc lazy per-origin ack map; allocated once per lane on the first merged-origin ack, not per frame
			d.ackedO = make(map[int64]int64)
		}
		d.ackedO[origin] = seq
		d.trimJournalLocked()
	default:
		l.mu.Unlock()
		return
	}
	waiters := d.txWaiters.TakeAll()
	cb := d.onAck
	l.mu.Unlock()
	for _, w := range waiters {
		w.Wake(msgNetWake)
	}
	if cb != nil {
		cb(origin, seq)
	}
}

// trimJournalLocked drops every journal entry at or below its origin's ack
// watermark.  Merged flows interleave origins in the (send-ordered) journal,
// so the trim is a filter rather than a prefix cut; acks arrive on a cadence,
// not per frame, which bounds the amortized cost.
func (d *durable) trimJournalLocked() {
	n := 0
	for i := range d.journal {
		e := &d.journal[i]
		acked := d.acked
		if e.origin != 0 {
			acked = d.ackedO[e.origin]
		}
		if e.seq <= acked {
			d.recycle(e.data)
			continue
		}
		d.journal[n] = *e
		n++
	}
	for j := n; j < len(d.journal); j++ {
		d.journal[j] = laneEntry{}
	}
	d.journal = d.journal[:n]
}

// replayLocked re-sends every journaled frame (and a pending EOS) on the
// current connection.  Called under l.mu right after a durable Redial.
func (l *TCPLink) replayLocked() error {
	d := l.dur
	for _, e := range d.journal {
		if err := l.writeDataFrameLocked(e.prio, e.origin, e.seq, e.data); err != nil {
			return fmt.Errorf("netpipe: durable replay origin %d seq %d: %w", e.origin, e.seq, err)
		}
		d.replays++
	}
	if d.eosPend && !d.eosAcked {
		if err := l.writeSeqFrameLocked(frameEOSSeq, d.eosSeq, nil); err != nil {
			return fmt.Errorf("netpipe: durable replay EOS: %w", err)
		}
	}
	return nil
}

func (l *TCPLink) deregisterTx(tok uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dur.txWaiters.Remove(tok)
}

// popDurable pulls the next frame on the receiver side and drives the ack
// protocol.  The ack anchor is the *previous* popped frame: pulling item
// K+1 proves item K fully traversed the (single-pump) receiving pipeline, so
// acknowledging K never confirms an item that could still be lost with the
// pipeline.  The pipeline is FIFO regardless of origin, so popping any frame
// promotes the previous one — whatever its origin — to that origin's ackable
// watermark.  A multi-pump receiver (a buffer in the segment) breaks the
// proof — the graph layer enforces the assumption by refusing to re-place
// such segments when their inbound lane self-acks (see graph replaceable).
// Chained listeners do not self-ack — their watermark arrives via PushAck
// from the downstream lane.
//
//ipvet:hotpath durable-lane receive: inbox pop + self-ack per item
func (l *TCPLink) popDurable(t *uthread.Thread, stopping func() bool) (int64, int64, []byte, error) {
	origin, seq, data, err := l.inbox.popSeqWith(t, stopping)
	if err != nil {
		if err == core.ErrEOS {
			l.ackEOS()
		}
		return 0, 0, nil, err
	}
	d := l.dur
	if d.lastPoppedO == 0 {
		d.ackAnchor.Store(d.lastPopped)
	} else {
		// Merged flows pay the lock on the anchor promotion; the origin-0
		// fast path above stays lock-free.
		l.mu.Lock()
		d.originSeen(d.lastPoppedO)
		d.anchorO[d.lastPoppedO] = d.lastPopped
		l.mu.Unlock()
	}
	d.lastPopped, d.lastPoppedO = seq, origin
	if !d.cfg.Chained {
		d.sinceAck++
		if d.sinceAck >= d.cfg.AckEvery {
			// The lock is only taken on the ack cadence, not per pop.
			anchor := d.ackAnchor.Load()
			l.mu.Lock()
			wrote := false
			if anchor > d.lastAck && l.writeAckLocked(anchor) {
				d.lastAck = anchor
				wrote = true
			}
			for _, o := range d.origins {
				if a := d.anchorO[o]; a > d.lastAckO[o] && l.writeAckOLocked(o, a) {
					d.lastAckO[o] = a
					wrote = true
				}
			}
			if wrote {
				d.sinceAck = 0
			}
			l.mu.Unlock()
		}
	}
	return origin, seq, data, nil
}

// ackEOS sends the final cumulative ack once the stream genuinely ended (a
// terminal frame arrived and the inbox is drained).
func (l *TCPLink) ackEOS() {
	d := l.dur
	l.mu.Lock()
	if d.eosSeen && !d.cfg.Chained && !d.finalAcked {
		if l.writeAckLocked(ackAll) {
			d.finalAcked = true
		}
	}
	l.mu.Unlock()
}

// PushAck feeds a downstream per-origin ack watermark into a chained
// listener, which forwards it to its own sender: the upstream journal then
// covers exactly what has not been consumed at the end of the chain.  ackAll
// (from AckAllSeq, always origin 0) marks the whole stream drained
// downstream.
func (l *TCPLink) PushAck(origin, seq int64) {
	if l.dur == nil || l.inbox == nil {
		return
	}
	d := l.dur
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	switch {
	case origin == 0 && seq == ackAll:
		if !d.finalAcked {
			d.finalAcked = true
			_ = l.writeAckLocked(ackAll)
		}
	case origin == 0 && seq > d.chainAck:
		d.chainAck = seq
		if l.writeAckLocked(seq) {
			d.lastAck = seq
		}
	case origin != 0:
		d.originSeen(origin)
		if seq > d.chainAckO[origin] {
			d.chainAckO[origin] = seq
			if l.writeAckOLocked(origin, seq) {
				d.lastAckO[origin] = seq
			}
		}
	}
	l.mu.Unlock()
}

// AckAllSeq is the cumulative watermark meaning "everything, including end
// of stream" — the value delivered to SetOnAck callbacks when the receiver
// confirms the full stream, and accepted by PushAck.
const AckAllSeq int64 = ackAll
