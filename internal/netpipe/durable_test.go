package netpipe_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/netpipe"
	"infopipes/internal/pipes"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// durablePair is a two-scheduler producer/consumer pair joined by a durable
// TCP lane on loopback — the smallest assembly that exercises the journal /
// ack / dedup protocol end to end.
type durablePair struct {
	txSched, rxSched *uthread.Scheduler
	txLink, rxLink   *netpipe.TCPLink
	addr             string
	conn             net.Conn
	prod, cons       *core.Pipeline
	sink             *pipes.CollectSink
	txDone, rxDone   <-chan error
}

// startDurablePair composes both pipelines and starts the schedulers; the
// producer starts immediately, the consumer only if startCons is set (the
// backpressure test delays it).  rate <= 0 means a free-running pump.
func startDurablePair(t *testing.T, n int64, rate float64, queue int,
	sCfg, rCfg netpipe.DurableConfig, dial func(addr string) (net.Conn, error),
	startCons bool) *durablePair {
	t.Helper()
	p := &durablePair{}
	p.rxSched = uthread.New(uthread.WithClock(vclock.Real{}))
	var err error
	p.rxLink, p.addr, err = netpipe.NewDurableTCPListenerLink("127.0.0.1:0", p.rxSched, "rx-node", queue, rCfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if dial == nil {
		dial = netpipe.Dial
	}
	p.conn, err = dial(p.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	p.txLink = netpipe.NewDurableTCPSenderLink(p.conn, sCfg)
	p.txSched = uthread.New(uthread.WithClock(vclock.Real{}))
	pump := pipes.NewFreePump("txpump")
	if rate > 0 {
		pump = pipes.NewClockedPump("txpump", rate)
	}
	p.prod, err = core.Compose("producer", p.txSched, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", n)),
		core.Pmp(pump),
		core.Comp(netpipe.NewMarshalFilter("marshal", netpipe.GobMarshaller{})),
		core.Comp(p.txLink.NewSink("netsink")),
	})
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	p.sink = pipes.NewCollectSink("sink")
	p.cons, err = core.Compose("consumer", p.rxSched, nil, []core.Stage{
		core.Comp(p.rxLink.NewSource("netsource")),
		core.Comp(netpipe.NewUnmarshalFilter("unmarshal", netpipe.GobMarshaller{})),
		core.Pmp(pipes.NewFreePump("rxpump")),
		core.Comp(p.sink),
	})
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	p.txDone = p.txSched.RunBackground()
	p.rxDone = p.rxSched.RunBackground()
	p.prod.Start()
	if startCons {
		p.cons.Start()
	}
	t.Cleanup(func() {
		_ = p.txLink.Close()
		_ = p.rxLink.Close()
	})
	return p
}

// wait blocks until a scheduler finishes, failing the test on timeout.
func waitSched(t *testing.T, name string, ch <-chan error, ignoreErr bool) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil && !ignoreErr {
			t.Fatalf("%s: %v", name, err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("%s did not finish", name)
	}
}

// assertExactlyOnce checks the sink holds sequences 1..n, in order, no gaps,
// no duplicates — the durable lane contract.
func assertExactlyOnce(t *testing.T, sink *pipes.CollectSink, n int64) {
	t.Helper()
	if got := int64(sink.Count()); got != n {
		t.Fatalf("sink received %d items, want %d", got, n)
	}
	for i, it := range sink.Items() {
		if it.Seq != int64(i+1) {
			t.Fatalf("item %d has seq %d, want %d (loss, duplication, or reordering)", i, it.Seq, i+1)
		}
	}
}

// poll retries cond for up to d.
func poll(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDurableLaneExactlyOnceCleanRun drives 400 items through a journal of
// 32 — the journal fills and trims a dozen times over — and checks the happy
// path is invisible: no duplicates, no replays, journal drained, final ack
// confirmed.
func TestDurableLaneExactlyOnceCleanRun(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 32, AckEvery: 4}
	p := startDurablePair(t, 400, 0, 64, cfg, cfg, nil, true)
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOnce(t, p.sink, 400)
	st := p.rxLink.LaneStats()
	if st.Dups != 0 {
		t.Errorf("receiver dropped %d duplicates on a clean run", st.Dups)
	}
	// The final cumulative ack races the scheduler exit; give it a moment.
	poll(t, 2*time.Second, func() bool {
		st := p.txLink.LaneStats()
		return !st.EOSPending && st.Journaled == 0
	}, "final ack to drain the journal")
	if st := p.txLink.LaneStats(); st.Replays != 0 {
		t.Errorf("sender replayed %d frames on a clean run", st.Replays)
	}
}

// TestDurableJournalFullBackpressure wedges the consumer (never started) so
// no acks flow: the sender must fill its journal to exactly the limit and
// then block — not drop, not grow — until the consumer starts and acks trim
// it.  This is the ack-starvation / journal-wraparound edge of the protocol.
func TestDurableJournalFullBackpressure(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 8, AckEvery: 1}
	p := startDurablePair(t, 100, 0, 2, cfg, cfg, nil, false)
	poll(t, 5*time.Second, func() bool {
		return p.txLink.LaneStats().Journaled == 8
	}, "journal to fill to its limit")
	// Hold the starved state for a beat: the journal must not creep past the
	// limit and nothing may reach the (unstarted) consumer's sink.
	time.Sleep(50 * time.Millisecond)
	if st := p.txLink.LaneStats(); st.Journaled != 8 {
		t.Fatalf("journal at %d entries, limit 8 (backpressure failed)", st.Journaled)
	}
	if p.sink.Count() != 0 {
		t.Fatalf("sink received %d items before consumer start", p.sink.Count())
	}
	p.cons.Start()
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOnce(t, p.sink, 100)
}

// TestDurableRedialReplaysJournal kills the TCP connection mid-stream (bare
// EOF on the receiver, write failures on the sender) and redials: the
// journal replay must close the gap with zero loss and the dedup watermark
// must absorb the overlap with zero duplication at the sink.
func TestDurableRedialReplaysJournal(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 64, AckEvery: 4}
	p := startDurablePair(t, 300, 2000, 16, cfg, cfg, nil, true)
	poll(t, 10*time.Second, func() bool { return p.sink.Count() >= 50 }, "50 items before the cut")
	p.conn.Close() // the wire dies; both halves of the lane park
	time.Sleep(20 * time.Millisecond)
	if err := p.txLink.Redial(p.addr); err != nil {
		t.Fatalf("redial: %v", err)
	}
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOnce(t, p.sink, 300)
	if st := p.txLink.LaneStats(); st.Replays == 0 {
		t.Errorf("no journal replay recorded across a redial")
	}
}

// TestDurableSenderReplacement kills the sender half entirely mid-stream and
// attaches a brand-new sender (fresh link, fresh journal, fresh producer
// re-emitting the whole stream from sequence 1) to the surviving listener —
// the shape of a failed-over upstream segment.  The receiver's dedup
// watermark must drop everything already consumed, keeping the sink
// exactly-once.
func TestDurableSenderReplacement(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 256, AckEvery: 2}
	p := startDurablePair(t, 200, 2000, 16, cfg, cfg, nil, true)
	poll(t, 10*time.Second, func() bool { return p.sink.Count() >= 60 }, "60 items before the kill")
	_ = p.txLink.Close() // the sender node dies; its journal dies with it
	waitSched(t, "old producer", p.txDone, true)

	txSched2 := uthread.New(uthread.WithClock(vclock.Real{}))
	conn2, err := netpipe.Dial(p.addr)
	if err != nil {
		t.Fatalf("replacement dial: %v", err)
	}
	txLink2 := netpipe.NewDurableTCPSenderLink(conn2, cfg)
	defer txLink2.Close()
	prod2, err := core.Compose("producer2", txSched2, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src2", 200)),
		core.Pmp(pipes.NewFreePump("txpump2")),
		core.Comp(netpipe.NewMarshalFilter("marshal2", netpipe.GobMarshaller{})),
		core.Comp(txLink2.NewSink("netsink2")),
	})
	if err != nil {
		t.Fatalf("compose replacement: %v", err)
	}
	txDone2 := txSched2.RunBackground()
	prod2.Start()
	waitSched(t, "replacement producer", txDone2, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOnce(t, p.sink, 200)
	if st := p.rxLink.LaneStats(); st.Dups == 0 {
		t.Errorf("replacement sender re-emitted the stream but the receiver dropped no duplicates")
	}
}

// TestDurableListenerReplacement kills the listener half mid-stream and
// stands up a fresh one on a new address — the shape of a failed-over
// downstream segment.  The sender's journal replay must deliver every item
// the old listener had not acknowledged; the union of old and new sinks must
// cover the stream with no gap, and the overlap must stay within the ack
// window (items popped but not yet anchored by a later pop).
func TestDurableListenerReplacement(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 1024, AckEvery: 2}
	p := startDurablePair(t, 200, 2000, 16, cfg, cfg, nil, true)
	poll(t, 10*time.Second, func() bool { return p.sink.Count() >= 60 }, "60 items before the kill")
	_ = p.rxLink.Close() // the receiver node dies; dedup state dies with it
	waitSched(t, "old consumer", p.rxDone, true)
	oldItems := p.sink.Items()

	rxSched2 := uthread.New(uthread.WithClock(vclock.Real{}))
	rxLink2, addr2, err := netpipe.NewDurableTCPListenerLink("127.0.0.1:0", rxSched2, "rx-node-2", 16, cfg)
	if err != nil {
		t.Fatalf("replacement listen: %v", err)
	}
	defer rxLink2.Close()
	sink2 := pipes.NewCollectSink("sink2")
	cons2, err := core.Compose("consumer2", rxSched2, nil, []core.Stage{
		core.Comp(rxLink2.NewSource("netsource2")),
		core.Comp(netpipe.NewUnmarshalFilter("unmarshal2", netpipe.GobMarshaller{})),
		core.Pmp(pipes.NewFreePump("rxpump2")),
		core.Comp(sink2),
	})
	if err != nil {
		t.Fatalf("compose replacement consumer: %v", err)
	}
	rxDone2 := rxSched2.RunBackground()
	cons2.Start()
	if err := p.txLink.Redial(addr2); err != nil {
		t.Fatalf("redial to replacement: %v", err)
	}
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "replacement consumer", rxDone2, false)

	seen := make(map[int64]int)
	for _, it := range oldItems {
		seen[it.Seq]++
	}
	overlap := 0
	for _, it := range sink2.Items() {
		seen[it.Seq]++
		if seen[it.Seq] > 1 {
			overlap++
		}
	}
	for seq := int64(1); seq <= 200; seq++ {
		if seen[seq] == 0 {
			t.Fatalf("sequence %d lost across listener replacement", seq)
		}
	}
	// The dedup watermark died with the listener, so re-delivery of the
	// unacknowledged tail is expected — but it must stay within the ack
	// window, not re-run the stream.
	if maxOverlap := cfg.AckEvery + 16; /* pipeline in flight */ overlap > maxOverlap {
		t.Errorf("overlap of %d items after listener replacement, want <= %d", overlap, maxOverlap)
	}
}

// chaosRedialer watches a chaos connection and redials (through a fresh
// seeded chaos wrapper) whenever a fault severs it, until stopped.
type chaosRedialer struct {
	mu    sync.Mutex
	conns []*netpipe.ChaosConn
	stop  chan struct{}
	done  chan struct{}
}

func newChaosRedialer(link *netpipe.TCPLink, addr string, first *netpipe.ChaosConn, seed int64, cfg netpipe.Chaos) *chaosRedialer {
	r := &chaosRedialer{stop: make(chan struct{}), done: make(chan struct{})}
	r.conns = append(r.conns, first)
	go func() {
		defer close(r.done)
		cur := first
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			if cur.Severed() {
				seed++
				nc, err := netpipe.ChaosDial(addr, seed, cfg)
				if err == nil {
					r.mu.Lock()
					r.conns = append(r.conns, nc)
					r.mu.Unlock()
					cur = nc
					_ = link.ResumeConn(nc) // a failed replay parks again; next round retries
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	return r
}

func (r *chaosRedialer) halt() netpipe.ChaosStats {
	close(r.stop)
	<-r.done
	var total netpipe.ChaosStats
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		st := c.Stats()
		total.Writes += st.Writes
		total.Drops += st.Drops
		total.Dups += st.Dups
		total.Delays += st.Delays
		total.Stalls += st.Stalls
		total.Kills += st.Kills
	}
	return total
}

// TestDurableLaneUnderChaos runs the full protocol against the seeded fault
// injector — frames dropped inside dying sockets, duplicated, delayed,
// stalled, and killed mid-frame, with the lane redialed after every sever —
// and requires the sink to stay exactly-once, in order, for every seed.
func TestDurableLaneUnderChaos(t *testing.T) {
	chaos := netpipe.Chaos{
		DropOneIn:  40,
		DupOneIn:   25,
		DelayOneIn: 15,
		StallOneIn: 90,
		KillOneIn:  60,
		MaxDelay:   500 * time.Microsecond,
		StallFor:   5 * time.Millisecond,
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := netpipe.DurableConfig{JournalLimit: 128, AckEvery: 4}
			var first *netpipe.ChaosConn
			dial := func(addr string) (net.Conn, error) {
				c, err := netpipe.ChaosDial(addr, seed, chaos)
				first = c
				return c, err
			}
			p := startDurablePair(t, 400, 0, 32, cfg, cfg, dial, true)
			red := newChaosRedialer(p.txLink, p.addr, first, seed*1000, chaos)
			waitSched(t, "producer", p.txDone, false)
			waitSched(t, "consumer", p.rxDone, false)
			stats := red.halt()
			assertExactlyOnce(t, p.sink, 400)
			if stats.Drops+stats.Kills+stats.Dups == 0 {
				t.Logf("chaos injected no faults for seed %d (stats %+v)", seed, stats)
			} else {
				t.Logf("survived chaos: %+v, receiver dropped %d dups, sender replayed %d",
					stats, p.rxLink.LaneStats().Dups, p.txLink.LaneStats().Replays)
			}
		})
	}
}
