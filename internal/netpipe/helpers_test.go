package netpipe_test

import (
	"net"
	"testing"
)

// makeLoopbackPair opens a TCP connection pair on an ephemeral loopback
// port: (accepted server side, dialled client side).
func makeLoopbackPair(t *testing.T) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acceptCh <- acceptResult{conn: c, err: err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	res := <-acceptCh
	if res.err != nil {
		t.Fatalf("accept: %v", res.err)
	}
	t.Cleanup(func() {
		client.Close()
		res.conn.Close()
	})
	return res.conn, client
}
