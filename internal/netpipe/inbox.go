package netpipe

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/trace"
	"infopipes/internal/uthread"
)

// msgNetWake wakes a thread blocked on an empty netpipe inbox.
const msgNetWake uthread.Kind = uthread.KindUserBase + 40

// inbox is the receiver-side frame queue of a netpipe: packets are injected
// from outside the thread system (a simnet delivery thread or a TCP reader
// goroutine) and pulled by the consumer pipeline's source endpoint.  It is
// the netpipe analogue of a buffer's passive pull end, including control
// delivery while blocked (§3.2).
type inbox struct {
	mu      sync.Mutex
	q       [][]byte
	closed  bool
	sched   *uthread.Scheduler
	limit   int
	waiters core.WaiterList
	drops   trace.Counter
}

// newInbox builds an inbox holding at most limit frames (0 = unlimited).
func newInbox(sched *uthread.Scheduler, limit int) *inbox {
	return &inbox{sched: sched, limit: limit}
}

// inject appends a frame, waking one blocked puller.  Safe from any
// goroutine.  Frames injected after close, or beyond the limit, are
// dropped.
func (b *inbox) inject(data []byte) {
	b.mu.Lock()
	if b.closed || (b.limit > 0 && len(b.q) >= b.limit) {
		b.mu.Unlock()
		b.drops.Inc()
		return
	}
	b.q = append(b.q, data)
	w, ok := b.waiters.PopFront()
	b.mu.Unlock()
	if ok {
		w.Wake(msgNetWake)
	}
}

// close marks end of stream and wakes all blocked pullers.
func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	waiters := b.waiters.TakeAll()
	b.mu.Unlock()
	for _, w := range waiters {
		w.Wake(msgNetWake)
	}
}

// pop removes the next frame, blocking (with control dispatch) while empty.
// Returns core.ErrEOS after close and drain, core.ErrStopped on pipeline
// shutdown.
func (b *inbox) pop(ctx *core.Ctx) ([]byte, error) {
	return b.popWith(ctx.Thread(), ctx.Stopping)
}

// popWith is pop against an explicit thread and stop predicate, so the
// blocking protocol can be exercised (and tested) without a composed
// pipeline.  stopping may be nil.
func (b *inbox) popWith(t *uthread.Thread, stopping func() bool) ([]byte, error) {
	if stopping == nil {
		stopping = func() bool { return false }
	}
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			data := b.q[0]
			b.q = b.q[1:]
			b.mu.Unlock()
			return data, nil
		}
		if b.closed {
			b.mu.Unlock()
			return nil, core.ErrEOS
		}
		if stopping() {
			b.mu.Unlock()
			return nil, core.ErrStopped
		}
		tok := b.waiters.Register(t)
		b.mu.Unlock()
		if err := core.AwaitWake(t, msgNetWake, tok, stopping, b.deregister); err != nil {
			return nil, err
		}
	}
}

func (b *inbox) deregister(tok uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiters.Remove(tok)
}

// length reports the number of queued frames.
func (b *inbox) length() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// dropped reports the number of frames discarded at injection (queue-limit
// overflow, or arrival after close).
func (b *inbox) dropped() int64 { return b.drops.Value() }
