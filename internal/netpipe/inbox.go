package netpipe

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/trace"
	"infopipes/internal/uthread"
)

// msgNetWake wakes a thread blocked on an empty netpipe inbox.
const msgNetWake uthread.Kind = uthread.KindUserBase + 40

// inbox is the receiver-side frame queue of a netpipe: packets are injected
// from outside the thread system (a simnet delivery thread or a TCP reader
// goroutine) and pulled by the consumer pipeline's source endpoint.  It is
// the netpipe analogue of a buffer's passive pull end, including control
// delivery while blocked (§3.2).
type inbox struct {
	mu      sync.Mutex
	q       [][]byte
	closed  bool
	sched   *uthread.Scheduler
	limit   int
	nextTok uint64
	waiters []inboxWaiter
	drops   trace.Counter
}

type inboxWaiter struct {
	th  *uthread.Thread
	tok uint64
}

// newInbox builds an inbox holding at most limit frames (0 = unlimited).
func newInbox(sched *uthread.Scheduler, limit int) *inbox {
	return &inbox{sched: sched, limit: limit}
}

// inject appends a frame, waking one blocked puller.  Safe from any
// goroutine.  Frames injected after close, or beyond the limit, are
// dropped.
func (b *inbox) inject(data []byte) {
	b.mu.Lock()
	if b.closed || (b.limit > 0 && len(b.q) >= b.limit) {
		b.mu.Unlock()
		b.drops.Inc()
		return
	}
	b.q = append(b.q, data)
	var w *inboxWaiter
	if len(b.waiters) > 0 {
		w = &b.waiters[0]
		b.waiters = b.waiters[1:]
	}
	sched := b.sched
	b.mu.Unlock()
	if w != nil {
		sched.Post(w.th, uthread.Message{
			Kind:       msgNetWake,
			Data:       w.tok,
			Constraint: uthread.At(uthread.PriorityHigh),
		})
	}
}

// close marks end of stream and wakes all blocked pullers.
func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	waiters := b.waiters
	b.waiters = nil
	sched := b.sched
	b.mu.Unlock()
	for _, w := range waiters {
		sched.Post(w.th, uthread.Message{
			Kind:       msgNetWake,
			Data:       w.tok,
			Constraint: uthread.At(uthread.PriorityHigh),
		})
	}
}

// pop removes the next frame, blocking (with control dispatch) while empty.
// Returns core.ErrEOS after close and drain, core.ErrStopped on pipeline
// shutdown.
func (b *inbox) pop(ctx *core.Ctx) ([]byte, error) {
	t := ctx.Thread()
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			data := b.q[0]
			b.q = b.q[1:]
			b.mu.Unlock()
			return data, nil
		}
		if b.closed {
			b.mu.Unlock()
			return nil, core.ErrEOS
		}
		if ctx.Stopping() {
			b.mu.Unlock()
			return nil, core.ErrStopped
		}
		b.nextTok++
		tok := b.nextTok
		b.waiters = append(b.waiters, inboxWaiter{th: t, tok: tok})
		b.mu.Unlock()
		if err := b.await(ctx, t, tok); err != nil {
			return nil, err
		}
	}
}

func (b *inbox) await(ctx *core.Ctx, t *uthread.Thread, tok uint64) error {
	isWake := func(m uthread.Message) bool {
		w, ok := m.Data.(uint64)
		return m.Kind == msgNetWake && ok && w == tok
	}
	for {
		m := t.ReceiveMatch(func(m uthread.Message) bool {
			return isWake(m) || events.IsControl(m)
		})
		if isWake(m) {
			b.deregister(tok)
			return nil
		}
		t.DispatchControl(m)
		if ctx.Stopping() {
			if !b.deregister(tok) {
				t.TryReceive(isWake) // consume the in-flight wake
			}
			return core.ErrStopped
		}
	}
}

func (b *inbox) deregister(tok uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, w := range b.waiters {
		if w.tok == tok {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// length reports the number of queued frames.
func (b *inbox) length() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}
