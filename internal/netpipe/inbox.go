package netpipe

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/trace"
	"infopipes/internal/uthread"
)

// msgNetWake wakes a thread blocked on an empty netpipe inbox.
const msgNetWake uthread.Kind = uthread.KindUserBase + 40

// frameEntry is one queued inbound frame.  seq is zero on plain lanes and
// the source-assigned item sequence on durable lanes; origin is the item's
// merge provenance (zero on unmerged flows).
type frameEntry struct {
	origin int64
	seq    int64
	data   []byte
}

// inbox is the receiver-side frame queue of a netpipe: packets are injected
// from outside the thread system (a simnet delivery thread or a TCP reader
// goroutine) and pulled by the consumer pipeline's source endpoint.  It is
// the netpipe analogue of a buffer's passive pull end, including control
// delivery while blocked (§3.2).
type inbox struct {
	mu     sync.Mutex
	q      []frameEntry
	closed bool
	// stopped distinguishes link teardown from end of stream: a closed
	// inbox delivers ErrStopped to pullers when set, ErrEOS when not.  A
	// link torn down mid-stream (node shutdown, segment re-placement) must
	// stop its pipeline quietly — an ErrEOS there would propagate a bogus
	// end-of-stream downstream and terminate lanes that the re-placed
	// segment still needs.
	stopped bool
	sched   *uthread.Scheduler
	limit   int
	// blockFull inboxes (durable lanes) park the injecting goroutine on
	// pushCond while the queue is full, instead of dropping the frame: a
	// dropped frame on a durable lane would be acked-but-lost.
	blockFull bool
	pushCond  *sync.Cond // lazily created, guarded by mu
	waiters   core.WaiterList
	drops     trace.Counter
}

// newInbox builds an inbox holding at most limit frames (0 = unlimited).
func newInbox(sched *uthread.Scheduler, limit int) *inbox {
	return &inbox{sched: sched, limit: limit}
}

// inject appends a frame, waking one blocked puller.  Safe from any
// goroutine.  Frames injected after close, or beyond the limit, are
// dropped.
func (b *inbox) inject(data []byte) {
	b.injectPrio(data, uthread.PriorityHigh)
}

// injectPrio is inject with an explicit wake constraint: the cross-flow QoS
// path for priority-tagged frames, waking the puller at the SENDER's
// effective priority so a high-priority tenant's items preempt on the
// receiving scheduler too.  wakeAt must already be floored through
// core.WakePrio.
func (b *inbox) injectPrio(data []byte, wakeAt uthread.Priority) {
	b.mu.Lock()
	if b.closed || (b.limit > 0 && len(b.q) >= b.limit) {
		b.mu.Unlock()
		b.drops.Inc()
		return
	}
	b.q = append(b.q, frameEntry{data: data})
	w, ok := b.waiters.PopFront()
	b.mu.Unlock()
	if ok {
		w.WakeAt(msgNetWake, wakeAt)
	}
}

// injectSeqWait appends a sequence-tagged frame.  On a blockFull inbox it
// blocks the caller (a TCP reader goroutine, never a scheduler thread)
// while the queue is full, so durable-lane backpressure propagates to the
// sender through TCP flow control instead of dropping frames.  Reports
// false when the inbox closed before the frame could be queued.
func (b *inbox) injectSeqWait(seq int64, data []byte) bool {
	return b.injectSeqPrioWait(0, seq, data, uthread.PriorityHigh)
}

// injectSeqPrioWait is injectSeqWait with an explicit origin and wake
// constraint (see injectPrio).
func (b *inbox) injectSeqPrioWait(origin, seq int64, data []byte, wakeAt uthread.Priority) bool {
	b.mu.Lock()
	for !b.closed && b.blockFull && b.limit > 0 && len(b.q) >= b.limit {
		if b.pushCond == nil {
			b.pushCond = sync.NewCond(&b.mu)
		}
		b.pushCond.Wait()
	}
	if b.closed || (!b.blockFull && b.limit > 0 && len(b.q) >= b.limit) {
		b.mu.Unlock()
		b.drops.Inc()
		return false
	}
	b.q = append(b.q, frameEntry{origin: origin, seq: seq, data: data})
	w, ok := b.waiters.PopFront()
	b.mu.Unlock()
	if ok {
		w.WakeAt(msgNetWake, wakeAt)
	}
	return true
}

// close marks end of stream and wakes all blocked pullers and injectors.
func (b *inbox) close() { b.closeWith(false) }

// closeStopped marks link teardown: pullers see core.ErrStopped instead of
// core.ErrEOS once the queue drains, so the consuming pipeline stops
// without propagating an end-of-stream it never received.
func (b *inbox) closeStopped() { b.closeWith(true) }

func (b *inbox) closeWith(stopped bool) {
	b.mu.Lock()
	if !b.closed {
		// First close wins: a stream that genuinely ended (EOS frame seen,
		// reader exited) must keep delivering ErrEOS even if the link is
		// torn down while the pipeline is still draining the queue.
		b.closed = true
		b.stopped = stopped
	}
	if b.pushCond != nil {
		b.pushCond.Broadcast()
	}
	waiters := b.waiters.TakeAll()
	b.mu.Unlock()
	for _, w := range waiters {
		w.Wake(msgNetWake)
	}
}

// pop removes the next frame, blocking (with control dispatch) while empty.
// Returns core.ErrEOS after close and drain, core.ErrStopped on pipeline
// shutdown.
func (b *inbox) pop(ctx *core.Ctx) ([]byte, error) {
	_, _, data, err := b.popSeqWith(ctx.Thread(), ctx.Stopping)
	return data, err
}

// popWith is pop against an explicit thread and stop predicate, so the
// blocking protocol can be exercised (and tested) without a composed
// pipeline.  stopping may be nil.
func (b *inbox) popWith(t *uthread.Thread, stopping func() bool) ([]byte, error) {
	_, _, data, err := b.popSeqWith(t, stopping)
	return data, err
}

// popSeq is pop returning the frame's origin and lane sequence alongside
// the data.
func (b *inbox) popSeq(ctx *core.Ctx) (int64, int64, []byte, error) {
	return b.popSeqWith(ctx.Thread(), ctx.Stopping)
}

func (b *inbox) popSeqWith(t *uthread.Thread, stopping func() bool) (int64, int64, []byte, error) {
	if stopping == nil {
		stopping = func() bool { return false }
	}
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			e := b.q[0]
			b.q = b.q[1:]
			if b.pushCond != nil {
				b.pushCond.Signal()
			}
			b.mu.Unlock()
			return e.origin, e.seq, e.data, nil
		}
		if b.closed {
			stopped := b.stopped
			b.mu.Unlock()
			if stopped {
				return 0, 0, nil, core.ErrStopped
			}
			return 0, 0, nil, core.ErrEOS
		}
		if stopping() {
			b.mu.Unlock()
			return 0, 0, nil, core.ErrStopped
		}
		tok := b.waiters.Register(t)
		b.mu.Unlock()
		if err := core.AwaitWake(t, msgNetWake, tok, stopping, b.deregister); err != nil {
			return 0, 0, nil, err
		}
	}
}

func (b *inbox) deregister(tok uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiters.Remove(tok)
}

// length reports the number of queued frames.
func (b *inbox) length() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// dropped reports the number of frames discarded at injection (queue-limit
// overflow, or arrival after close).
func (b *inbox) dropped() int64 { return b.drops.Value() }
