package netpipe

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

const kindTestKick uthread.Kind = uthread.KindUserBase + 91

// TestTCPSendAfterCloseReportsStopped: the seed's send returned nil after
// Close, so tcpSink.Push reported success while dropping the item.  Senders
// must learn the link is gone.
func TestTCPSendAfterCloseReportsStopped(t *testing.T) {
	c1, c2 := net.Pipe()
	go io.Copy(io.Discard, c2) //nolint:errcheck — drain until close
	link := NewTCPSenderLink(c1)

	if err := link.send(frameData, []byte("alive")); err != nil {
		t.Fatalf("send on live link: %v", err)
	}
	if err := link.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := link.send(frameData, []byte("dead")); !errors.Is(err, core.ErrStopped) {
		t.Fatalf("send after Close = %v, want core.ErrStopped", err)
	}

	sink := link.NewSink("sink").(*tcpSink)
	it := item.New([]byte("payload"), 0, time.Time{})
	if err := sink.Push(nil, it); !errors.Is(err, core.ErrStopped) {
		t.Fatalf("Push after Close = %v, want core.ErrStopped", err)
	}
	if link.Dropped() != 0 {
		t.Fatalf("sender link Dropped = %d, want 0", link.Dropped())
	}
	c2.Close()
}

// TestInboxOverflowCountsDrops: frames beyond the queue limit (and frames
// arriving after close) are discarded and the drop counter says so.
func TestInboxOverflowCountsDrops(t *testing.T) {
	b := newInbox(uthread.New(), 2)
	for i := 0; i < 5; i++ {
		b.inject([]byte{byte(i)})
	}
	if got := b.length(); got != 2 {
		t.Fatalf("length = %d, want limit 2", got)
	}
	if got := b.dropped(); got != 3 {
		t.Fatalf("dropped = %d after overflow, want 3", got)
	}
	b.close()
	b.inject([]byte{9})
	if got := b.dropped(); got != 4 {
		t.Fatalf("dropped = %d after post-close inject, want 4", got)
	}
}

// TestInboxWaiterWokenExactlyOnceAtClose: a puller blocked on an empty inbox
// is woken exactly once by close — no lost wake (it returns) and no
// duplicate wake (its queue is empty afterwards, even after a second close).
func TestInboxWaiterWokenExactlyOnceAtClose(t *testing.T) {
	s := uthread.New(uthread.WithClock(vclock.Real{}))
	s.AddExternalSource()
	b := newInbox(s, 0)

	type outcome struct {
		err      error
		residual int
	}
	done := make(chan outcome, 1)
	th := s.Spawn("puller", uthread.PriorityNormal, func(th *uthread.Thread, m uthread.Message) uthread.Disposition {
		_, err := b.popWith(th, nil)
		residual := 0
		for {
			if _, ok := th.TryReceive(nil); !ok {
				break
			}
			residual++
		}
		done <- outcome{err: err, residual: residual}
		return uthread.Terminate
	})
	s.Post(th, uthread.Message{Kind: kindTestKick})
	errc := s.RunBackground()

	// Wait until the puller is registered, then close twice.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := b.waiters.Len()
		b.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("puller never blocked on the inbox")
		}
		time.Sleep(50 * time.Microsecond)
	}
	b.close()
	b.close() // idempotent: must not wake anybody a second time

	res := <-done
	if !errors.Is(res.err, core.ErrEOS) {
		t.Fatalf("pop after close = %v, want core.ErrEOS", res.err)
	}
	if res.residual != 0 {
		t.Fatalf("%d residual messages after wake, want 0 (woken more than once)", res.residual)
	}
	s.ReleaseExternalSource()
	if err := <-errc; err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

// TestInboxInjectCloseRace hammers inject/close/pop concurrently (run under
// -race in CI): every injected frame is either delivered or counted as
// dropped, and the puller exits with EOS exactly once.
func TestInboxInjectCloseRace(t *testing.T) {
	const injectors = 4
	const perInjector = 200
	s := uthread.New(uthread.WithClock(vclock.Real{}))
	s.AddExternalSource()
	b := newInbox(s, 8)

	received := make(chan int, 1)
	th := s.Spawn("puller", uthread.PriorityNormal, func(th *uthread.Thread, m uthread.Message) uthread.Disposition {
		n := 0
		for {
			_, err := b.popWith(th, nil)
			if err != nil {
				if !errors.Is(err, core.ErrEOS) {
					t.Errorf("pop: %v", err)
				}
				break
			}
			n++
		}
		received <- n
		return uthread.Terminate
	})
	s.Post(th, uthread.Message{Kind: kindTestKick})
	errc := s.RunBackground()

	var wg sync.WaitGroup
	for i := 0; i < injectors; i++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for j := 0; j < perInjector; j++ {
				b.inject([]byte{seed, byte(j)})
			}
		}(byte(i))
	}
	// Concurrent observers of the counters (the race detector's food).
	stopObs := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopObs:
				return
			default:
				_ = b.length()
				_ = b.dropped()
			}
		}
	}()
	wg.Wait()
	b.close()
	got := <-received
	close(stopObs)
	s.ReleaseExternalSource()
	if err := <-errc; err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	total := int64(injectors * perInjector)
	if int64(got)+b.dropped() != total {
		t.Fatalf("received %d + dropped %d != injected %d (frames lost untracked)", got, b.dropped(), total)
	}
}
