// Package netpipe integrates transport protocols into the Infopipe
// framework (§2.4): netpipes support plain data flows and manage low-level
// properties such as bandwidth and latency, while marshalling filters on
// either side translate between the raw data flow and the higher-level
// information flow.  The location property of the Typespec is changed only
// by netpipes.
//
// Two transports are provided: an in-process simulated best-effort network
// (SimLink) with configurable bandwidth, propagation delay, jitter, loss
// and a drop-tail queue — the reproducible substitute for the paper's
// best-effort UDP path — and a real TCP transport (TCPLink) for
// distributed pipelines on loopback or LAN.
package netpipe

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// ItemTypeWire is the Typespec item type of marshalled flows between the
// marshalling filters and the netpipe.
const ItemTypeWire = "net/bytes"

// Marshaller converts items to wire frames and back.
type Marshaller interface {
	Marshal(it *item.Item) ([]byte, error)
	Unmarshal(data []byte) (*item.Item, error)
}

// wireItem is the gob representation of an item.
type wireItem struct {
	Seq     int64
	Origin  int64
	Created time.Time
	Size    int
	Attrs   map[string]any
	Payload any
}

// DefaultMarshaller returns the codec netpipes use unless told otherwise:
// the binary wire codec with a self-contained gob fallback (safe on lossy
// links).  Reliable ordered transports (TCP) upgrade the fallback to a
// per-connection gob stream via NewStreamingBinaryMarshaller.
func DefaultMarshaller() Marshaller { return NewBinaryMarshaller() }

// GobMarshaller marshals items with encoding/gob, prefixed by a length and
// suitable for any payload registered with RegisterPayload.  It is the
// compatibility codec; BinaryMarshaller is the default and the fast path.
type GobMarshaller struct{}

var _ Marshaller = GobMarshaller{}

// RegisterPayload registers a concrete payload type with the gob layer.
// Call it once per payload type before marshalling (e.g. in package init of
// the application).
func RegisterPayload(v any) { gob.Register(v) }

// Marshal implements Marshaller.
func (GobMarshaller) Marshal(it *item.Item) ([]byte, error) {
	var buf bytes.Buffer
	w := wireItem{Seq: it.Seq, Origin: it.Origin, Created: it.Created, Size: it.Size, Attrs: it.Attrs, Payload: it.Payload}
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("netpipe: marshal item seq %d: %w", it.Seq, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal implements Marshaller.
func (GobMarshaller) Unmarshal(data []byte) (*item.Item, error) {
	var w wireItem
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("netpipe: unmarshal: %w", err)
	}
	return &item.Item{Seq: w.Seq, Origin: w.Origin, Created: w.Created, Size: w.Size, Attrs: w.Attrs, Payload: w.Payload}, nil
}

// NewMarshalFilter returns the producer-side marshalling filter (§2.4): a
// function-style component converting the information flow into the plain
// data flow the netpipe carries.  The marshalled frame keeps the original
// item's sequence and creation time so end-to-end latency remains
// measurable downstream.
func NewMarshalFilter(name string, m Marshaller) core.Function {
	return &marshalFilter{Base: core.Base{CompName: name}, m: m}
}

type marshalFilter struct {
	core.Base
	m Marshaller
}

// Style implements core.Component.
func (f *marshalFilter) Style() core.Style { return core.StyleFunction }

// TransformSpec implements core.Component: the flow becomes a plain byte
// flow; all other properties ride along for the peer's unmarshaller.
func (f *marshalFilter) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	if out.Props == nil {
		out.Props = map[string]string{}
	}
	out.Props["carried-item-type"] = in.ItemType
	out.ItemType = ItemTypeWire
	return out
}

// Convert implements core.Function.
func (f *marshalFilter) Convert(_ *core.Ctx, it *item.Item) (*item.Item, error) {
	data, err := f.m.Marshal(it)
	if err != nil {
		return nil, err
	}
	out := item.New(data, it.Seq, it.Created).WithSize(len(data))
	out.Origin = it.Origin // durable lanes journal on the (Origin, Seq) pair
	// Synthetic payloads declare a nominal byte size without carrying the
	// bytes; keep the larger figure so netpipes account bandwidth for the
	// flow the payload represents.
	if it.Size > out.Size {
		out.Size = it.Size
	}
	it.Recycle() // the information item ends here; its bytes travel on
	return out, nil
}

// NewUnmarshalFilter returns the consumer-side marshalling filter,
// restoring the higher-level information flow from the netpipe's byte flow.
func NewUnmarshalFilter(name string, m Marshaller) core.Function {
	return &unmarshalFilter{Base: core.Base{CompName: name}, m: m}
}

type unmarshalFilter struct {
	core.Base
	m Marshaller
}

// Style implements core.Component.
func (f *unmarshalFilter) Style() core.Style { return core.StyleFunction }

// InputSpec implements core.Component.
func (f *unmarshalFilter) InputSpec() typespec.Typespec { return typespec.New(ItemTypeWire) }

// TransformSpec implements core.Component: restores the carried item type.
func (f *unmarshalFilter) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	out.ItemType = ""
	if out.Props != nil {
		out.ItemType = out.Props["carried-item-type"]
		delete(out.Props, "carried-item-type")
	}
	return out
}

// Convert implements core.Function.
func (f *unmarshalFilter) Convert(_ *core.Ctx, it *item.Item) (*item.Item, error) {
	data, ok := it.Payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("netpipe: unmarshal filter %q: payload %T is not []byte", f.Name(), it.Payload)
	}
	out, err := f.m.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	it.Recycle() // the wire item ends here; the information item travels on
	return out, nil
}

// frame type tags on the wire.
const (
	frameData byte = 1
	frameEOS  byte = 2
	// Durable-lane frames (sequence-numbered, §2.4 + failover): the payload
	// is prefixed with an 8-byte big-endian sequence number.  frameAck flows
	// receiver→sender on the same connection (TCP is full duplex) and
	// carries the cumulative highest sequence the receiver has durably
	// consumed; frameEOSSeq is the terminal frame of a durable lane and
	// carries the last data sequence, so the receiver can tell a complete
	// stream from a truncated one.
	frameDataSeq byte = 3
	frameAck     byte = 4
	frameEOSSeq  byte = 5
	// QoS-tagged data frames: one extra byte right after the tag carries the
	// SENDER's effective priority, so a lane relay stops being pass-through —
	// the receiving scheduler wakes its consumer at the sender's priority and
	// a tenant's priority survives the hop.  Senders emit these only for
	// non-default priorities, so default-tenant traffic keeps the untagged
	// wire format byte-for-byte.
	frameDataPrio    byte = 6 // [prio][payload]
	frameDataSeqPrio byte = 7 // [prio][8-byte seq][payload], durable lanes
	// Origin-qualified durable frames, used downstream of a merge: a merge
	// interleaves its branches' sequence numbers, so the lane journals and
	// acknowledges the (origin, seq) PAIR instead of the bare sequence.
	// Senders emit these only for items whose Origin is non-zero, so every
	// flow that never crossed a merge keeps the origin-less wire format
	// byte-for-byte.
	frameDataOSeq     byte = 8  // [8-byte origin][8-byte seq][payload]
	frameDataOSeqPrio byte = 9  // [prio][8-byte origin][8-byte seq][payload]
	frameAckO         byte = 10 // [8-byte origin][8-byte seq], receiver→sender
)

// ackAll is the cumulative ack value meaning "everything, including the
// EOS frame, has been delivered and drained".
const ackAll int64 = 1<<63 - 1

// encodeSeqFrame appends a length-prefixed frame whose body is
// [tag][8-byte big-endian seq][payload].
func encodeSeqFrame(dst []byte, tag byte, seq int64, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-13:], uint32(len(payload)+9))
	binary.BigEndian.PutUint64(dst[len(dst)-8:], uint64(seq))
	return append(dst, payload...)
}

// encodePrioFrame appends a length-prefixed frame whose body is
// [tag][prio][payload] — the QoS-tagged plain data frame.
//
//ipvet:hotpath per-item wire framing for non-default-priority tenants
func encodePrioFrame(dst []byte, tag, prio byte, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag, prio)
	binary.BigEndian.PutUint32(dst[len(dst)-6:], uint32(len(payload)+2))
	return append(dst, payload...)
}

// encodeSeqPrioFrame appends a length-prefixed frame whose body is
// [tag][prio][8-byte big-endian seq][payload] — the QoS-tagged durable data
// frame.
//
//ipvet:hotpath per-item durable framing for non-default-priority tenants
func encodeSeqPrioFrame(dst []byte, tag, prio byte, seq int64, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag, prio, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-14:], uint32(len(payload)+10))
	binary.BigEndian.PutUint64(dst[len(dst)-8:], uint64(seq))
	return append(dst, payload...)
}

// encodeOSeqFrame appends a length-prefixed frame whose body is
// [tag][8-byte origin][8-byte seq][payload] — the origin-qualified durable
// data frame (also encodes frameAckO with an empty payload).
//
//ipvet:hotpath per-item durable framing downstream of a merge
func encodeOSeqFrame(dst []byte, tag byte, origin, seq int64, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-21:], uint32(len(payload)+17))
	binary.BigEndian.PutUint64(dst[len(dst)-16:], uint64(origin))
	binary.BigEndian.PutUint64(dst[len(dst)-8:], uint64(seq))
	return append(dst, payload...)
}

// encodeOSeqPrioFrame appends a length-prefixed frame whose body is
// [tag][prio][8-byte origin][8-byte seq][payload] — the QoS-tagged
// origin-qualified durable data frame.
//
//ipvet:hotpath per-item durable framing downstream of a merge
func encodeOSeqPrioFrame(dst []byte, tag, prio byte, origin, seq int64, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag, prio,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-22:], uint32(len(payload)+18))
	binary.BigEndian.PutUint64(dst[len(dst)-16:], uint64(origin))
	binary.BigEndian.PutUint64(dst[len(dst)-8:], uint64(seq))
	return append(dst, payload...)
}

// prioByte encodes a scheduling priority into the wire's one-byte field
// (clamped; every standard level fits).
func prioByte(p uthread.Priority) byte {
	if p < 0 {
		return 0
	}
	if p > 255 {
		return 255
	}
	return byte(p)
}

// encodeFrame appends a length-and-tag-prefixed frame for payload to dst
// and returns the extended buffer.  Senders keep one transmit buffer per
// connection and pass it as dst (re-sliced to zero length), so steady-state
// framing reuses the same allocation instead of building a fresh frame per
// send.
//
//ipvet:hotpath per-item wire framing; reuses the caller's transmit buffer
func encodeFrame(dst []byte, tag byte, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0, tag)
	binary.BigEndian.PutUint32(dst[len(dst)-5:], uint32(len(payload)+1))
	return append(dst, payload...)
}
