package netpipe

import (
	"fmt"
	"time"

	"infopipes/internal/media"
)

// Binary payload codecs for the media flows that dominate netpipe traffic:
// synthetic video frames and MIDI events.  Registered here (the transport
// layer knows both worlds) so every netpipe user gets the fast path without
// wiring codecs by hand; media itself stays free of wire-format concerns.

// Payload codes of the built-in media codecs.
const (
	binMediaFrame byte = binCustomBase + iota
	binMediaMIDI
)

func init() {
	RegisterBinaryPayload(binMediaFrame, (*media.Frame)(nil), appendMediaFrame, parseMediaFrame)
	RegisterBinaryPayload(binMediaMIDI, (*media.MidiEvent)(nil), appendMidiEvent, parseMidiEvent)
}

func appendMediaFrame(dst []byte, v any) []byte {
	f := v.(*media.Frame)
	dst = appendUvarint(dst, uint64(f.Type))
	dst = appendVarint(dst, f.Seq)
	dst = appendVarint(dst, int64(f.PTS))
	dst = appendVarint(dst, int64(f.Bytes))
	dst = appendUvarint(dst, uint64(len(f.Refs)))
	for _, r := range f.Refs {
		dst = appendVarint(dst, r)
	}
	b := byte(0)
	if f.Decoded {
		b = 1
	}
	return append(dst, b)
}

func parseMediaFrame(src []byte) (any, []byte, error) {
	var f media.Frame
	ft, src, err := parseUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	f.Type = media.FrameType(ft)
	if f.Seq, src, err = parseVarint(src); err != nil {
		return nil, nil, err
	}
	var pts, size int64
	if pts, src, err = parseVarint(src); err != nil {
		return nil, nil, err
	}
	f.PTS = time.Duration(pts)
	if size, src, err = parseVarint(src); err != nil {
		return nil, nil, err
	}
	f.Bytes = int(size)
	nrefs, src, err := parseUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if nrefs > uint64(len(src)) { // each ref is at least one byte
		return nil, nil, fmt.Errorf("netpipe: frame decode: %d refs exceed frame", nrefs)
	}
	if nrefs > 0 {
		f.Refs = make([]int64, nrefs)
		for i := range f.Refs {
			if f.Refs[i], src, err = parseVarint(src); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("netpipe: frame decode: truncated decoded flag")
	}
	f.Decoded = src[0] != 0
	return &f, src[1:], nil
}

func appendMidiEvent(dst []byte, v any) []byte {
	e := v.(*media.MidiEvent)
	return append(dst, e.Channel, e.Note, e.Velocity)
}

func parseMidiEvent(src []byte) (any, []byte, error) {
	if len(src) < 3 {
		return nil, nil, fmt.Errorf("netpipe: midi decode: truncated event")
	}
	e := &media.MidiEvent{Channel: src[0], Note: src[1], Velocity: src[2]}
	return e, src[3:], nil
}
