package netpipe_test

import (
	"errors"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/media"
	"infopipes/internal/netpipe"
	"infopipes/internal/pipes"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

func init() {
	netpipe.RegisterPayload(int64(0))
	netpipe.RegisterPayload(&media.Frame{})
}

func TestGobMarshallerRoundTrip(t *testing.T) {
	m := netpipe.GobMarshaller{}
	orig := item.New(int64(42), 7, vclock.Epoch.Add(time.Second)).
		WithSize(100).
		WithAttr("frametype", "I")
	data, err := m.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := m.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Seq != 7 || back.Size != 100 || !back.Created.Equal(orig.Created) {
		t.Errorf("metadata mismatch: %+v", back)
	}
	if back.Payload.(int64) != 42 {
		t.Errorf("payload = %v, want 42", back.Payload)
	}
	if back.AttrString("frametype") != "I" {
		t.Errorf("attr lost")
	}
}

func TestGobMarshallerErrors(t *testing.T) {
	m := netpipe.GobMarshaller{}
	if _, err := m.Unmarshal([]byte("garbage")); err == nil {
		t.Error("unmarshal of garbage succeeded")
	}
}

// buildWirePipelines composes the Fig 3 structure on one scheduler:
// producer pipeline (source -> pump -> marshal -> netsink) and consumer
// pipeline (netsource -> unmarshal -> pump -> sink) joined by a SimLink.
func buildWirePipelines(t *testing.T, s *uthread.Scheduler, cfg netpipe.SimConfig, n int64) (*core.Pipeline, *core.Pipeline, *pipes.CollectSink, *netpipe.SimLink) {
	t.Helper()
	link := netpipe.NewSimLink("wire", s, cfg)
	prod, err := core.Compose("producer", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", n)),
		core.Pmp(pipes.NewFreePump("txpump")),
		core.Comp(netpipe.NewMarshalFilter("marshal", netpipe.GobMarshaller{})),
		core.Comp(link.NewSink("netsink")),
	})
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	cons, err := core.Compose("consumer", s, prod.Bus(), []core.Stage{
		core.Comp(link.NewSource("netsource")),
		core.Comp(netpipe.NewUnmarshalFilter("unmarshal", netpipe.GobMarshaller{})),
		core.Pmp(pipes.NewFreePump("rxpump")),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	return prod, cons, sink, link
}

func TestSimLinkDeliversAll(t *testing.T) {
	s := uthread.New()
	prod, _, sink, link := buildWirePipelines(t, s, netpipe.SimConfig{
		PropDelay: 10 * time.Millisecond,
		RxNode:    "consumer-node",
	}, 25)
	prod.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := sink.Count(); got != 25 {
		t.Fatalf("sink received %d items, want 25", got)
	}
	for i, it := range sink.Items() {
		if it.Seq != int64(i+1) {
			t.Errorf("item %d seq = %d, want %d (ordering)", i, it.Seq, i+1)
		}
		if it.Payload.(int64) != int64(i+1) {
			t.Errorf("item %d payload mismatch", i)
		}
	}
	sent, lost, qdrop, delivered := link.Stats()
	if sent != 25 || lost != 0 || qdrop != 0 || delivered != 25 {
		t.Errorf("link stats sent=%d lost=%d qdrop=%d delivered=%d", sent, lost, qdrop, delivered)
	}
}

func TestSimLinkLatencyAtLeastPropDelay(t *testing.T) {
	s := uthread.New()
	const prop = 40 * time.Millisecond
	prod, _, sink, _ := buildWirePipelines(t, s, netpipe.SimConfig{PropDelay: prop}, 10)
	prod.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if sink.Count() != 10 {
		t.Fatalf("sink received %d items", sink.Count())
	}
	if min := sink.Latency().Min(); min < prop.Seconds() {
		t.Errorf("min latency %.4fs < propagation delay %.4fs", min, prop.Seconds())
	}
}

func TestSimLinkLossDropsPackets(t *testing.T) {
	s := uthread.New()
	prod, _, sink, link := buildWirePipelines(t, s, netpipe.SimConfig{
		LossProb: 0.5,
		Seed:     7,
	}, 200)
	prod.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	sent, lost, _, delivered := link.Stats()
	if lost == 0 {
		t.Fatal("no packets lost at 50% loss")
	}
	if sent+lost != 200 {
		t.Errorf("sent %d + lost %d != 200", sent, lost)
	}
	if int64(sink.Count()) != delivered {
		t.Errorf("sink %d != delivered %d", sink.Count(), delivered)
	}
	// Roughly half should survive (binomial, generous bounds).
	if sink.Count() < 60 || sink.Count() > 140 {
		t.Errorf("survivors = %d, want ~100", sink.Count())
	}
}

func TestSimLinkBandwidthQueueDropsUnderCongestion(t *testing.T) {
	// A fast producer into a slow link with a small queue: drop-tail
	// congestion loss — the environment of experiment E9.
	s := uthread.New()
	prod, _, sink, link := buildWirePipelines(t, s, netpipe.SimConfig{
		BandwidthBps: 10_000, // very slow
		QueueBytes:   2_000,
		RxNode:       "rx",
	}, 100)
	prod.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	_, _, qdrop, delivered := link.Stats()
	if qdrop == 0 {
		t.Fatal("no queue drops under congestion")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if int64(sink.Count()) != delivered {
		t.Errorf("sink %d != delivered %d", sink.Count(), delivered)
	}
}

func TestSimSourceChangesLocation(t *testing.T) {
	s := uthread.New()
	link := netpipe.NewSimLink("wire", s, netpipe.SimConfig{RxNode: "nodeB", BandwidthBps: 1e6, PropDelay: time.Millisecond})
	src := link.NewSource("netsource")
	in := typespec.New(netpipe.ItemTypeWire).WithLocation("nodeA")
	out := src.TransformSpec(in)
	if out.Location != "nodeB" {
		t.Errorf("location = %q, want nodeB (only netpipes change location)", out.Location)
	}
	if out.QoSRange("bandwidth").Hi != 1e6 {
		t.Errorf("bandwidth QoS not applied: %v", out.QoSRange("bandwidth"))
	}
	link.Close()
	go func() {
		// drain the delivery thread so Run exits
	}()
	s.Stop()
	_ = s.Run()
}

func TestTCPLinkEndToEnd(t *testing.T) {
	// Real TCP on loopback with real clocks: producer scheduler and
	// consumer scheduler in one process, like the paper's two nodes.
	txSched := uthread.New(uthread.WithClock(vclock.Real{}))
	rxSched := uthread.New(uthread.WithClock(vclock.Real{}))

	serverConn, clientConn := makeLoopbackPair(t)

	txLink := netpipe.NewTCPSenderLink(clientConn)
	rxLink := netpipe.NewTCPReceiverLink(serverConn, rxSched, "rx-node", 0)

	prod, err := core.Compose("producer", txSched, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 30)),
		core.Pmp(pipes.NewFreePump("txpump")),
		core.Comp(netpipe.NewMarshalFilter("marshal", netpipe.GobMarshaller{})),
		core.Comp(txLink.NewSink("netsink")),
	})
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	cons, err := core.Compose("consumer", rxSched, nil, []core.Stage{
		core.Comp(rxLink.NewSource("netsource")),
		core.Comp(netpipe.NewUnmarshalFilter("unmarshal", netpipe.GobMarshaller{})),
		core.Pmp(pipes.NewFreePump("rxpump")),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}

	txDone := txSched.RunBackground()
	rxDone := rxSched.RunBackground()
	prod.Start()
	cons.Start()

	waitErr := func(name string, ch <-chan error) {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not finish", name)
		}
	}
	waitErr("producer scheduler", txDone)
	waitErr("consumer scheduler", rxDone)
	if got := sink.Count(); got != 30 {
		t.Fatalf("sink received %d items, want 30", got)
	}
	if !errors.Is(prod.Err(), nil) || !errors.Is(cons.Err(), nil) {
		t.Fatalf("pipeline errors: %v / %v", prod.Err(), cons.Err())
	}
	_ = txLink.Close()
	_ = rxLink.Close()
}
