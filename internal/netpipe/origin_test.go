package netpipe_test

import (
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/netpipe"
	"infopipes/internal/pipes"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// The per-origin durable protocol: a lane below a merge sees interleaved
// sequence numbers, so it journals, acknowledges and dedups on the
// (origin, seq) pair each merge in-port stamps.  These tests drive such a
// flow through a durable lane directly — two origins interleaved, each with
// its own monotone sequence — and break the lane mid-stream.

// originPair wires a durable loopback lane whose producer emits n items
// alternating between origins 1 and 2, each origin numbering its own items
// 1..n/2 (the shape a 2-input merge produces).
type originPair struct {
	*durablePair
}

func startOriginPair(t *testing.T, n int64, rate float64, cfg netpipe.DurableConfig) *originPair {
	t.Helper()
	p := &durablePair{}
	p.rxSched = uthread.New(uthread.WithClock(vclock.Real{}))
	var err error
	p.rxLink, p.addr, err = netpipe.NewDurableTCPListenerLink("127.0.0.1:0", p.rxSched, "rx-node", 16, cfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	p.conn, err = netpipe.Dial(p.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	p.txLink = netpipe.NewDurableTCPSenderLink(p.conn, cfg)
	p.txSched = uthread.New(uthread.WithClock(vclock.Real{}))
	pump := pipes.NewFreePump("txpump")
	if rate > 0 {
		pump = pipes.NewClockedPump("txpump", rate)
	}
	// Re-stamp the counter stream into two interleaved origins: global seq
	// 1,2,3,4... becomes (origin 1, seq 1), (origin 2, seq 1), (origin 1,
	// seq 2)... — per-origin monotone, globally interleaved, exactly what a
	// lane below a 2-input merge carries.
	stamp := pipes.NewFuncFilter("stamp", func(_ *core.Ctx, it *item.Item) (*item.Item, error) {
		it.Origin = 1 + (it.Seq+1)%2
		it.Seq = (it.Seq + 1) / 2
		return it, nil
	})
	p.prod, err = core.Compose("producer", p.txSched, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", n)),
		core.Pmp(pump),
		core.Comp(stamp),
		core.Comp(netpipe.NewMarshalFilter("marshal", netpipe.NewBinaryMarshaller())),
		core.Comp(p.txLink.NewSink("netsink")),
	})
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	p.sink = pipes.NewCollectSink("sink")
	p.cons, err = core.Compose("consumer", p.rxSched, nil, []core.Stage{
		core.Comp(p.rxLink.NewSource("netsource")),
		core.Comp(netpipe.NewUnmarshalFilter("unmarshal", netpipe.NewBinaryMarshaller())),
		core.Pmp(pipes.NewFreePump("rxpump")),
		core.Comp(p.sink),
	})
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	p.txDone = p.txSched.RunBackground()
	p.rxDone = p.rxSched.RunBackground()
	p.prod.Start()
	p.cons.Start()
	t.Cleanup(func() {
		_ = p.txLink.Close()
		_ = p.rxLink.Close()
	})
	return &originPair{durablePair: p}
}

// assertExactlyOncePerOrigin checks each origin's sub-stream arrived
// complete, in order, without duplicates — the merged-flow durable contract.
func assertExactlyOncePerOrigin(t *testing.T, sink *pipes.CollectSink, perOrigin map[int64]int64) {
	t.Helper()
	next := make(map[int64]int64)
	for _, it := range sink.Items() {
		next[it.Origin]++
		if it.Seq != next[it.Origin] {
			t.Fatalf("origin %d received seq %d, want %d (loss, duplication, or reordering)",
				it.Origin, it.Seq, next[it.Origin])
		}
	}
	for origin, want := range perOrigin {
		if next[origin] != want {
			t.Fatalf("origin %d received %d items, want %d", origin, next[origin], want)
		}
	}
	if len(next) != len(perOrigin) {
		t.Fatalf("sink saw %d origins, want %d", len(next), len(perOrigin))
	}
}

// TestDurableOriginCleanRun pushes an interleaved two-origin stream through
// a small journal: per-origin acks must trim it (a stuck journal would block
// the producer), and both sub-streams must arrive exactly once, in order.
func TestDurableOriginCleanRun(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 32, AckEvery: 4}
	p := startOriginPair(t, 400, 0, cfg)
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOncePerOrigin(t, p.sink, map[int64]int64{1: 200, 2: 200})
	if st := p.rxLink.LaneStats(); st.Dups != 0 {
		t.Errorf("receiver dropped %d duplicates on a clean run", st.Dups)
	}
	poll(t, 2*time.Second, func() bool {
		st := p.txLink.LaneStats()
		return !st.EOSPending && st.Journaled == 0
	}, "final ack to drain the journal")
}

// TestDurableOriginRedialReplays cuts the wire mid-stream and redials: the
// journal replay must restore both origins' tails with zero loss, and the
// per-origin dedup watermarks must absorb the overlap with zero duplication.
func TestDurableOriginRedialReplays(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 64, AckEvery: 4}
	p := startOriginPair(t, 300, 2000, cfg)
	poll(t, 10*time.Second, func() bool { return p.sink.Count() >= 50 }, "50 items before the cut")
	p.conn.Close()
	time.Sleep(20 * time.Millisecond)
	if err := p.txLink.Redial(p.addr); err != nil {
		t.Fatalf("redial: %v", err)
	}
	waitSched(t, "producer", p.txDone, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOncePerOrigin(t, p.sink, map[int64]int64{1: 150, 2: 150})
	if st := p.txLink.LaneStats(); st.Replays == 0 {
		t.Errorf("no journal replay recorded across a redial")
	}
}

// TestDurableOriginSenderReplacement kills the sender mid-stream and
// attaches a fresh one re-emitting the whole interleaved stream — the shape
// of a failed-over segment feeding a merge-downstream lane.  The receiver's
// per-origin dedup watermarks (re-announced in the reconnect handshake) must
// drop everything already consumed, keeping each origin exactly-once.
func TestDurableOriginSenderReplacement(t *testing.T) {
	cfg := netpipe.DurableConfig{JournalLimit: 256, AckEvery: 2}
	p := startOriginPair(t, 200, 2000, cfg)
	poll(t, 10*time.Second, func() bool { return p.sink.Count() >= 60 }, "60 items before the kill")
	_ = p.txLink.Close()
	waitSched(t, "old producer", p.txDone, true)

	txSched2 := uthread.New(uthread.WithClock(vclock.Real{}))
	conn2, err := netpipe.Dial(p.addr)
	if err != nil {
		t.Fatalf("replacement dial: %v", err)
	}
	txLink2 := netpipe.NewDurableTCPSenderLink(conn2, cfg)
	defer txLink2.Close()
	stamp2 := pipes.NewFuncFilter("stamp2", func(_ *core.Ctx, it *item.Item) (*item.Item, error) {
		it.Origin = 1 + (it.Seq+1)%2
		it.Seq = (it.Seq + 1) / 2
		return it, nil
	})
	prod2, err := core.Compose("producer2", txSched2, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src2", 200)),
		core.Pmp(pipes.NewFreePump("txpump2")),
		core.Comp(stamp2),
		core.Comp(netpipe.NewMarshalFilter("marshal2", netpipe.NewBinaryMarshaller())),
		core.Comp(txLink2.NewSink("netsink2")),
	})
	if err != nil {
		t.Fatalf("compose replacement: %v", err)
	}
	txDone2 := txSched2.RunBackground()
	prod2.Start()
	waitSched(t, "replacement producer", txDone2, false)
	waitSched(t, "consumer", p.rxDone, false)
	assertExactlyOncePerOrigin(t, p.sink, map[int64]int64{1: 100, 2: 100})
	if st := p.rxLink.LaneStats(); st.Dups == 0 {
		t.Errorf("replacement sender re-emitted the stream but the receiver dropped no duplicates")
	}
}
