package netpipe

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// TestPrioFrameWireLayout pins the byte layout of the QoS-tagged data
// frames: [4-byte len][tag][prio](…)[payload] for plain lanes and
// [4-byte len][tag][prio][8-byte seq][payload] for durable lanes.  The
// layout is a wire contract between nodes of different builds — it must not
// drift.
func TestPrioFrameWireLayout(t *testing.T) {
	payload := []byte("media")

	f := encodePrioFrame(nil, frameDataPrio, prioByte(uthread.PriorityHigh), payload)
	if got, want := binary.BigEndian.Uint32(f[:4]), uint32(len(payload)+2); got != want {
		t.Fatalf("prio frame length %d, want %d", got, want)
	}
	if f[4] != frameDataPrio || f[5] != byte(uthread.PriorityHigh) {
		t.Fatalf("prio frame header [%d %d], want [%d %d]",
			f[4], f[5], frameDataPrio, byte(uthread.PriorityHigh))
	}
	if string(f[6:]) != string(payload) {
		t.Fatalf("prio frame payload %q, want %q", f[6:], payload)
	}

	const seq = int64(0x0102030405060708)
	f = encodeSeqPrioFrame(nil, frameDataSeqPrio, prioByte(uthread.PriorityControl), seq, payload)
	if got, want := binary.BigEndian.Uint32(f[:4]), uint32(len(payload)+10); got != want {
		t.Fatalf("seq-prio frame length %d, want %d", got, want)
	}
	if f[4] != frameDataSeqPrio || f[5] != byte(uthread.PriorityControl) {
		t.Fatalf("seq-prio frame header [%d %d], want [%d %d]",
			f[4], f[5], frameDataSeqPrio, byte(uthread.PriorityControl))
	}
	if got := int64(binary.BigEndian.Uint64(f[6:14])); got != seq {
		t.Fatalf("seq-prio frame seq %#x, want %#x", got, seq)
	}
	if string(f[14:]) != string(payload) {
		t.Fatalf("seq-prio frame payload %q, want %q", f[14:], payload)
	}

	// The one-byte priority field clamps instead of wrapping.
	if prioByte(-3) != 0 || prioByte(1000) != 255 {
		t.Fatalf("prioByte clamps: got %d/%d, want 0/255", prioByte(-3), prioByte(1000))
	}
}

// TestPrioFramesThroughReader drives priority-tagged and untagged frames
// through the real sender and reader paths: sendPrio on one end of a pipe,
// readFrames injecting into the inbox on the other, a consumer thread
// popping.  Order and payloads survive, the stream ends on the EOS frame.
func TestPrioFramesThroughReader(t *testing.T) {
	server, client := net.Pipe()
	sched := uthread.New(uthread.WithClock(vclock.Real{}))
	rx := NewTCPReceiverLink(server, sched, "rx", 0)
	tx := NewTCPSenderLink(client)

	var got []string
	var popErr error
	th := sched.Spawn("pop", uthread.PriorityNormal, func(th *uthread.Thread, m uthread.Message) uthread.Disposition {
		for {
			data, err := rx.inbox.popWith(th, nil)
			if err != nil {
				popErr = err
				return uthread.Terminate
			}
			got = append(got, string(data))
		}
	})
	sched.Post(th, uthread.Message{Kind: kindTestKick})
	done := sched.RunBackground()

	if err := tx.sendPrio(uthread.PriorityControl, []byte("express")); err != nil {
		t.Fatalf("sendPrio: %v", err)
	}
	if err := tx.send(frameData, []byte("default")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := tx.sendPrio(uthread.PriorityHigh, []byte("urgent")); err != nil {
		t.Fatalf("sendPrio: %v", err)
	}
	if err := tx.send(frameEOS, nil); err != nil {
		t.Fatalf("send EOS: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("scheduler: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never drained the tagged stream")
	}
	if len(got) != 3 || got[0] != "express" || got[1] != "default" || got[2] != "urgent" {
		t.Fatalf("received %q, want [express default urgent]", got)
	}
	if !errors.Is(popErr, core.ErrEOS) {
		t.Fatalf("stream ended with %v, want core.ErrEOS", popErr)
	}
	_ = tx.Close()
	_ = rx.Close()
}

// TestDurableJournalKeepsPriority: the replay journal records each entry's
// wire priority byte, so frames replayed after a redial keep the tenant's
// priority tag (replayLocked writes e.prio back out).  Default-priority
// entries journal prio 0 — the marker for the untagged frame format — which
// keeps a QoS-unaware stream byte-identical on the wire even across replays.
func TestDurableJournalKeepsPriority(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	go func() {
		// Discard whatever the sender writes; the test only inspects the
		// journal.
		buf := make([]byte, 1<<10)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	sched := uthread.New(uthread.WithClock(vclock.Real{}))
	tx := NewDurableTCPSenderLink(client, DurableConfig{JournalLimit: 8})

	var sendErr error
	th := sched.Spawn("send", uthread.PriorityHigh, func(th *uthread.Thread, m uthread.Message) uthread.Disposition {
		if err := tx.sendDurableWith(th, nil, nil, 0, 1, []byte("tagged"), uthread.PriorityHigh); err != nil {
			sendErr = err
			return uthread.Terminate
		}
		sendErr = tx.sendDurableWith(th, nil, nil, 0, 2, []byte("plain"), uthread.PriorityNormal)
		return uthread.Terminate
	})
	sched.Post(th, uthread.Message{Kind: kindTestKick})
	if err := sched.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	if sendErr != nil {
		t.Fatalf("sendDurable: %v", sendErr)
	}

	tx.mu.Lock()
	entries := append([]laneEntry(nil), tx.dur.journal...)
	tx.mu.Unlock()
	if len(entries) != 2 {
		t.Fatalf("journal holds %d entries, want 2", len(entries))
	}
	if entries[0].prio != prioByte(uthread.PriorityHigh) || string(entries[0].data) != "tagged" {
		t.Fatalf("entry 1 prio=%d data=%q, want prio=%d data=tagged",
			entries[0].prio, entries[0].data, prioByte(uthread.PriorityHigh))
	}
	if entries[1].prio != 0 || string(entries[1].data) != "plain" {
		t.Fatalf("entry 2 prio=%d data=%q, want untagged marker 0 and data=plain",
			entries[1].prio, entries[1].data)
	}
	_ = tx.Close()
}
