package netpipe

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/trace"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// SimConfig parameterises the simulated best-effort network.
type SimConfig struct {
	// BandwidthBps is the link bandwidth in bytes per second (0 = inf).
	BandwidthBps float64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter] per packet.
	Jitter time.Duration
	// LossProb drops packets at random (congestion-independent loss).
	LossProb float64
	// QueueBytes bounds the sender-side drop-tail queue (0 = unlimited):
	// packets arriving while QueueBytes are already in flight are dropped,
	// which is how congestion manifests (§2.1 "the filter drops when the
	// network is congested" is the application-level answer to this).
	QueueBytes int
	// RxNode names the receiving node for the Typespec location property.
	RxNode string
	// Seed makes loss and jitter reproducible.
	Seed int64
}

// SimLink is one unidirectional simulated network path.  The sender-side
// endpoint (NewSink) pushes marshalled frames in; a delivery thread on the
// receiving scheduler matures them after transmission, propagation and
// jitter delays; the receiver-side endpoint (NewSource) pulls them out.
// With a virtual clock the whole link is deterministic.
//
// Both schedulers must share one clock; the common case is a single
// scheduler hosting both "nodes".
type SimLink struct {
	name string
	cfg  SimConfig

	rxSched *uthread.Scheduler
	inbox   *inbox
	thread  *uthread.Thread

	mu        sync.Mutex
	rng       *rand.Rand
	busyUntil time.Time
	inFlight  int
	pending   arrivalHeap
	seqCtr    uint64
	eosSent   bool
	done      bool

	sent      trace.Counter
	lost      trace.Counter
	queueDrop trace.Counter
	delivered trace.Counter
	sentBytes trace.Counter
}

type arrival struct {
	at   time.Time
	seq  uint64
	data []byte
	size int
	eos  bool
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	*h = old[:n-1]
	return a
}

// NewSimLink creates a link delivering into rxSched.  The link owns a
// delivery thread on rxSched which terminates once end-of-stream has been
// delivered (or the link is closed).
func NewSimLink(name string, rxSched *uthread.Scheduler, cfg SimConfig) *SimLink {
	l := &SimLink{
		name:    name,
		cfg:     cfg,
		rxSched: rxSched,
		inbox:   newInbox(rxSched, 0),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	l.thread = rxSched.Spawn("simnet/"+name, uthread.PriorityHigh, l.deliveryCode)
	rxSched.AddExternalSource()
	return l
}

// Stats reports (sent, lost, queueDropped, delivered) packet counts.
func (l *SimLink) Stats() (sent, lost, queueDropped, delivered int64) {
	return l.sent.Value(), l.lost.Value(), l.queueDrop.Value(), l.delivered.Value()
}

// SentBytes reports the bytes accepted onto the link.
func (l *SimLink) SentBytes() int64 { return l.sentBytes.Value() }

// QueueFill reports the sender-queue occupancy in [0, 1] (0 when the queue
// is unbounded) — the congestion signal consumer-side feedback sensors
// watch (§2.1).
func (l *SimLink) QueueFill() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.QueueBytes <= 0 {
		return 0
	}
	f := float64(l.inFlight) / float64(l.cfg.QueueBytes)
	if f > 1 {
		f = 1
	}
	return f
}

// send queues one frame for delivery, applying loss, queue overflow,
// transmission and propagation delays.  now must come from the shared
// clock.  size is the nominal wire size used for bandwidth and queue
// accounting — synthetic payloads (e.g. media frames) declare their real
// byte size without carrying the bytes.
func (l *SimLink) send(now time.Time, data []byte, size int, eos bool) {
	if size < len(data) {
		size = len(data)
	}
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	if eos {
		if l.eosSent {
			l.mu.Unlock()
			return
		}
		l.eosSent = true
	} else {
		if l.cfg.LossProb > 0 && l.rng.Float64() < l.cfg.LossProb {
			l.mu.Unlock()
			l.lost.Inc()
			return
		}
		if l.cfg.QueueBytes > 0 && l.inFlight+size > l.cfg.QueueBytes {
			l.mu.Unlock()
			l.queueDrop.Inc()
			return
		}
	}
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	var txDur time.Duration
	if l.cfg.BandwidthBps > 0 {
		txDur = time.Duration(float64(size) / l.cfg.BandwidthBps * float64(time.Second))
	}
	l.busyUntil = start.Add(txDur)
	at := l.busyUntil.Add(l.cfg.PropDelay)
	if l.cfg.Jitter > 0 {
		at = at.Add(time.Duration(l.rng.Float64() * float64(l.cfg.Jitter)))
	}
	l.inFlight += size
	l.seqCtr++
	heap.Push(&l.pending, arrival{at: at, seq: l.seqCtr, data: data, size: size, eos: eos})
	if !eos {
		l.sent.Inc()
		l.sentBytes.Add(int64(size))
	}
	l.mu.Unlock()
	l.rxSched.TimerAt(at, l.thread)
}

// deliveryCode runs on the receiving scheduler: each timer matures due
// packets into the inbox.  After EOS delivery the thread terminates.
func (l *SimLink) deliveryCode(t *uthread.Thread, m uthread.Message) uthread.Disposition {
	if m.Kind != uthread.KindTimer {
		if events.IsControl(m) {
			if ev, ok := events.FromMessage(m); ok && ev.Type == events.Stop {
				l.shutdown()
				return uthread.Terminate
			}
		}
		return uthread.Continue
	}
	now := l.rxSched.Now()
	finished := false
	for {
		l.mu.Lock()
		if len(l.pending) == 0 || l.pending[0].at.After(now) {
			empty := len(l.pending) == 0
			sawEOS := l.eosSent
			l.mu.Unlock()
			finished = empty && sawEOS
			break
		}
		a := heap.Pop(&l.pending).(arrival)
		l.inFlight -= a.size
		l.mu.Unlock()
		if a.eos {
			l.inbox.close()
		} else {
			l.delivered.Inc()
			l.inbox.inject(a.data)
		}
	}
	if finished {
		l.shutdown()
		return uthread.Terminate
	}
	return uthread.Continue
}

// shutdown closes the inbox and releases the external-source reference.
func (l *SimLink) shutdown() {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	l.done = true
	l.mu.Unlock()
	l.inbox.close()
	l.rxSched.ReleaseExternalSource()
}

// Close tears the link down from the application (idempotent); normally
// the sender's EOS does this.
func (l *SimLink) Close() {
	l.rxSched.Post(l.thread, events.NewMessage(events.Event{Type: events.Stop}))
}

// NewSink returns the producer-side endpoint: a consumer-style component
// that pushes marshalled frames onto the link.  It is the sink of the
// producer node's pipeline (Fig 3 left half).
func (l *SimLink) NewSink(name string) core.Component {
	return &simSink{Base: core.Base{CompName: name}, link: l}
}

type simSink struct {
	core.Base
	link *SimLink
}

var (
	_ core.Consumer = (*simSink)(nil)
	_ core.EOSSink  = (*simSink)(nil)
)

// Style implements core.Component.
func (s *simSink) Style() core.Style { return core.StyleConsumer }

// InputSpec implements core.Component: netpipes carry plain byte flows.
func (s *simSink) InputSpec() typespec.Typespec { return typespec.New(ItemTypeWire) }

// Push implements core.Consumer.
func (s *simSink) Push(ctx *core.Ctx, it *item.Item) error {
	data, ok := it.Payload.([]byte)
	if !ok {
		return fmt.Errorf("netpipe: sink %q: payload %T is not []byte (insert a marshal filter)", s.Name(), it.Payload)
	}
	s.link.send(ctx.Now(), data, it.Size, false)
	it.Recycle() // the payload bytes live on in the link's flight queue
	return nil
}

// HandleEOS implements core.EOSSink: end of the producer stream is
// signalled through the link.
func (s *simSink) HandleEOS(ctx *core.Ctx) { s.link.send(ctx.Now(), nil, 0, true) }

// HandleEvent implements core.Component: a stop on the producer side also
// ends the wire stream so the consumer node can finish.
func (s *simSink) HandleEvent(ctx *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		s.link.send(ctx.Now(), nil, 0, true)
	}
}

// SenderStages returns the canonical producer-side tail for this link —
// marshal filter plus sink — wired to the default binary codec.  The gob
// fallback stays self-contained per item: a simulated link may drop frames,
// and a per-connection gob stream does not survive loss.
func (l *SimLink) SenderStages(name string) []core.Stage {
	return []core.Stage{
		core.Comp(NewMarshalFilter(name+"/marshal", DefaultMarshaller())),
		core.Comp(l.NewSink(name + "/sink")),
	}
}

// ReceiverStages returns the canonical consumer-side head for this link —
// source plus unmarshal filter — wired to the default binary codec.
func (l *SimLink) ReceiverStages(name string) []core.Stage {
	return []core.Stage{
		core.Comp(l.NewSource(name + "/source")),
		core.Comp(NewUnmarshalFilter(name+"/unmarshal", DefaultMarshaller())),
	}
}

// NewSource returns the consumer-side endpoint: a producer-style component
// pulling frames off the link (Fig 3 right half).  Its Typespec
// transformation applies the link's QoS (bandwidth, latency) and changes
// the location property — the only stage kind allowed to do so (§2.4).
func (l *SimLink) NewSource(name string) core.Component {
	return &simSource{Base: core.Base{CompName: name}, link: l}
}

type simSource struct {
	core.Base
	link *SimLink
}

var _ core.Producer = (*simSource)(nil)

// Style implements core.Component.
func (s *simSource) Style() core.Style { return core.StyleProducer }

// TransformSpec implements core.Component.
func (s *simSource) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	out.ItemType = ItemTypeWire
	if s.link.cfg.RxNode != "" {
		out.Location = s.link.cfg.RxNode
	}
	if bw := s.link.cfg.BandwidthBps; bw > 0 {
		out = out.WithQoS("bandwidth", typespec.AtMost(bw))
	}
	if d := s.link.cfg.PropDelay; d > 0 {
		out = out.WithQoS("latency", typespec.AtLeast(d.Seconds()))
	}
	return out
}

// Pull implements core.Producer.
func (s *simSource) Pull(ctx *core.Ctx) (*item.Item, error) {
	data, err := s.link.inbox.pop(ctx)
	if err != nil {
		return nil, err
	}
	return item.New(data, 0, ctx.Now()).WithSize(len(data)), nil
}
