package netpipe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// TCPLink is a reliable netpipe over a real TCP connection, for
// distributed pipelines (§2.4).  Frames are length-prefixed with a
// one-byte type tag; the receiver side runs a reader goroutine that
// injects frames into the consumer scheduler (network packets mapped to
// messages, §4).  Use a real clock on schedulers that talk TCP.
type TCPLink struct {
	rxNode string

	mu     sync.Mutex
	conn   net.Conn
	ln     net.Listener // non-nil on listener links until the peer connects
	closed bool
	txBuf  []byte // reusable transmit frame buffer, guarded by mu
	// resumable listener links survive a bare connection EOF: the sender
	// went away (crashed, or was re-placed onto another node) and a
	// replacement may dial in; only an explicit EOS frame ends the stream.
	resumable bool
	// dur holds the durable-lane protocol state (journal/ack/dedup); nil on
	// plain links.  See durable.go.
	dur *durable

	rxSched    *uthread.Scheduler
	inbox      *inbox
	readerDone chan struct{}
}

// NewTCPSenderLink wraps the producer-side of an established connection.
func NewTCPSenderLink(conn net.Conn) *TCPLink {
	return &TCPLink{conn: conn}
}

// NewTCPReceiverLink wraps the consumer-side of an established connection
// and starts the reader goroutine, which lives until EOF, an EOS frame, or
// Close.  rxNode names this node for the location property.
func NewTCPReceiverLink(conn net.Conn, rxSched *uthread.Scheduler, rxNode string, queueLimit int) *TCPLink {
	l := &TCPLink{
		conn:       conn,
		rxNode:     rxNode,
		rxSched:    rxSched,
		inbox:      newInbox(rxSched, queueLimit),
		readerDone: make(chan struct{}),
	}
	rxSched.AddExternalSource()
	go l.readLoop()
	return l
}

// NewTCPListenerLink is the receiver link for rendezvous deployments
// (§2.4 remote setup driven by a third party): it binds addr immediately —
// so the returned address can be handed to the sender's node before anyone
// connects — and accepts exactly one inbound connection in the background,
// then behaves exactly like NewTCPReceiverLink.  The inbox exists from the
// start, so a pipeline may be composed on the link and block pulling before
// the sender has dialed.
func NewTCPListenerLink(addr string, rxSched *uthread.Scheduler, rxNode string, queueLimit int) (*TCPLink, string, error) {
	return newListenerLink(addr, rxSched, rxNode, queueLimit, false, nil)
}

// NewResumableTCPListenerLink is NewTCPListenerLink for cluster lanes: the
// listener stays open across connections, so a bare EOF (the sender died or
// was re-placed onto another node) parks the lane until a replacement
// sender dials in, instead of ending the stream.  Only an explicit EOS
// frame — or Close — is terminal.  At most one sender is served at a time;
// a second connection waits in the accept backlog until the current one
// goes away.
func NewResumableTCPListenerLink(addr string, rxSched *uthread.Scheduler, rxNode string, queueLimit int) (*TCPLink, string, error) {
	return newListenerLink(addr, rxSched, rxNode, queueLimit, true, nil)
}

func newListenerLink(addr string, rxSched *uthread.Scheduler, rxNode string, queueLimit int, resumable bool, dur *durable) (*TCPLink, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("netpipe: listen %s: %w", addr, err)
	}
	l := &TCPLink{
		ln:         ln,
		rxNode:     rxNode,
		resumable:  resumable,
		dur:        dur,
		rxSched:    rxSched,
		inbox:      newInbox(rxSched, queueLimit),
		readerDone: make(chan struct{}),
	}
	if dur != nil {
		// Durable receivers must not drop frames they will acknowledge:
		// a full inbox blocks the reader, pushing backpressure through
		// TCP flow control to the sender's journal.
		l.inbox.blockFull = true
	}
	rxSched.AddExternalSource()
	go l.acceptAndRead(ln)
	return l, ln.Addr().String(), nil
}

// acceptAndRead serves inbound connections: one peer at a time, one total
// unless the link is resumable.
func (l *TCPLink) acceptAndRead(ln net.Listener) {
	defer close(l.readerDone)
	defer l.rxSched.ReleaseExternalSource()
	defer l.closeInbox()
	for {
		conn, err := ln.Accept()
		l.mu.Lock()
		if err != nil || l.closed {
			l.ln = nil
			l.mu.Unlock()
			ln.Close()
			if conn != nil {
				conn.Close()
			}
			return
		}
		l.conn = conn
		if !l.resumable {
			l.ln = nil
		}
		if l.dur != nil {
			l.dur.wdUntil = time.Time{} // fresh connection, no deadline armed
			// Handshake: re-announce the consumed watermarks (origin 0 plus
			// one per merge origin seen) so a fresh or reconnecting sender
			// trims its journal before replaying.
			l.writeHandshakeLocked()
		}
		l.mu.Unlock()
		if !l.resumable {
			ln.Close()
		}
		terminal := l.readFrames(conn)
		if terminal && l.dur != nil {
			// Durable end of stream: keep the connection open so the final
			// cumulative ack (sent when the pipeline drains the inbox)
			// reaches the sender; Close tears the socket down.
			l.mu.Lock()
			l.ln = nil
			l.mu.Unlock()
			ln.Close()
			return
		}
		conn.Close()
		l.mu.Lock()
		if l.conn == conn {
			l.conn = nil
		}
		closed := l.closed
		l.mu.Unlock()
		if terminal || closed || !l.resumable {
			if l.resumable {
				l.mu.Lock()
				l.ln = nil
				l.mu.Unlock()
				ln.Close()
			}
			return
		}
	}
}

// closeInbox ends the inbox as the reader exits.  A link torn down by an
// explicit Close delivers core.ErrStopped to pullers (teardown is not end
// of stream — a dying node's pipeline must not manufacture an EOS and send
// it downstream); any other exit — an EOS frame, or sender EOF on a
// non-resumable link — delivers core.ErrEOS.
func (l *TCPLink) closeInbox() {
	l.mu.Lock()
	stopped := l.closed
	l.mu.Unlock()
	if stopped {
		l.inbox.closeStopped()
	} else {
		l.inbox.close()
	}
}

// readLoop reads frames until EOF or an EOS frame and injects them
// (receiver links wrapped around an established connection).
func (l *TCPLink) readLoop() {
	defer close(l.readerDone)
	defer l.rxSched.ReleaseExternalSource()
	defer l.closeInbox()
	l.readFrames(l.conn)
}

// readFrames injects frames from conn into the inbox until the connection
// ends.  It reports whether the stream itself ended (an explicit EOS frame
// or a malformed frame): a bare EOF is non-terminal, so resumable listener
// links can await a replacement sender.
func (l *TCPLink) readFrames(conn net.Conn) bool {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return false // bare EOF or connection torn down
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > 64<<20 {
			return true // malformed frame
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			return false
		}
		switch body[0] {
		case frameData:
			l.inbox.inject(body[1:])
		case frameDataPrio:
			if len(body) < 2 {
				return true
			}
			l.inbox.injectPrio(body[2:], core.WakePrio(uthread.Priority(body[1])))
		case frameEOS:
			return true
		case frameDataSeq:
			if l.dur == nil || len(body) < 9 {
				return true
			}
			seq := int64(binary.BigEndian.Uint64(body[1:9]))
			if seq <= l.dur.dedup.Load() {
				l.dur.dups.Add(1)
				continue // replayed frame the pipeline already consumed
			}
			// Advance the watermark before injecting: frames on one
			// connection arrive in order, so nothing can overtake this
			// sequence, and if the inject fails the link is closing anyway.
			l.dur.dedup.Store(seq)
			if !l.inbox.injectSeqWait(seq, body[9:]) {
				return false // link closing
			}
		case frameDataSeqPrio:
			if l.dur == nil || len(body) < 10 {
				return true
			}
			seq := int64(binary.BigEndian.Uint64(body[2:10]))
			if seq <= l.dur.dedup.Load() {
				l.dur.dups.Add(1)
				continue // replayed frame the pipeline already consumed
			}
			l.dur.dedup.Store(seq)
			if !l.inbox.injectSeqPrioWait(0, seq, body[10:], core.WakePrio(uthread.Priority(body[1]))) {
				return false // link closing
			}
		case frameDataOSeq:
			if l.dur == nil || len(body) < 17 {
				return true
			}
			origin := int64(binary.BigEndian.Uint64(body[1:9]))
			seq := int64(binary.BigEndian.Uint64(body[9:17]))
			if !l.passOSeq(origin, seq) {
				continue // replayed frame the pipeline already consumed
			}
			if !l.inbox.injectSeqPrioWait(origin, seq, body[17:], uthread.PriorityHigh) {
				return false // link closing
			}
		case frameDataOSeqPrio:
			if l.dur == nil || len(body) < 18 {
				return true
			}
			origin := int64(binary.BigEndian.Uint64(body[2:10]))
			seq := int64(binary.BigEndian.Uint64(body[10:18]))
			if !l.passOSeq(origin, seq) {
				continue // replayed frame the pipeline already consumed
			}
			if !l.inbox.injectSeqPrioWait(origin, seq, body[18:], core.WakePrio(uthread.Priority(body[1]))) {
				return false // link closing
			}
		case frameEOSSeq:
			if l.dur == nil {
				return true
			}
			l.mu.Lock()
			l.dur.eosSeen = true
			l.mu.Unlock()
			return true
		case frameAck, frameAckO:
			// Receiver side never expects acks; tolerate and move on.
		default:
			return true
		}
	}
}

// passOSeq advances the per-origin dedup watermark for one inbound frame,
// reporting whether the frame is new.  Frames on one connection arrive in
// order, so advancing before injecting is safe (nothing overtakes, and a
// failed inject means the link is closing).  Merged flows pay the link lock
// here; the origin-0 path keeps its lock-free atomic watermark.
//
//ipvet:hotpath per-frame dedup below a merge
func (l *TCPLink) passOSeq(origin, seq int64) bool {
	d := l.dur
	l.mu.Lock()
	d.originSeen(origin)
	if seq <= d.dedupO[origin] {
		l.mu.Unlock()
		d.dups.Add(1)
		return false
	}
	d.dedupO[origin] = seq
	l.mu.Unlock()
	return true
}

// send writes one frame on the sender side, reusing the link's transmit
// buffer (the lock serialises senders, so one buffer per connection is
// enough).  Sending on a closed link reports core.ErrStopped: silently
// returning success here made tcpSink.Push drop items on the floor after
// Close while the pipeline kept pumping.
func (l *TCPLink) send(tag byte, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return core.ErrStopped
	}
	if l.conn == nil {
		// A listener link whose peer has not connected yet: refuse rather
		// than dereference (sender endpoints on listener links are legal
		// to construct, just not to use before the rendezvous).
		return ErrNoConn
	}
	l.txBuf = encodeFrame(l.txBuf[:0], tag, payload)
	if _, err := l.conn.Write(l.txBuf); err != nil {
		return fmt.Errorf("netpipe: tcp send: %w", err)
	}
	return nil
}

// sendPrio writes one priority-tagged data frame: the sender's effective
// priority crosses the wire in one byte, so the receiving scheduler can wake
// its consumer at the tenant's priority.  Used only for non-default
// priorities — default traffic keeps the untagged wire format.
//
//ipvet:hotpath per-item send for non-default-priority tenants
func (l *TCPLink) sendPrio(prio uthread.Priority, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return core.ErrStopped
	}
	if l.conn == nil {
		return ErrNoConn
	}
	l.txBuf = encodePrioFrame(l.txBuf[:0], frameDataPrio, prioByte(prio), payload)
	if _, err := l.conn.Write(l.txBuf); err != nil {
		return fmt.Errorf("netpipe: tcp send: %w", err) //ipvet:allow hotalloc dead-connection error path, not steady state
	}
	return nil
}

// Close tears the link down.  On the receiver side it stops the reader
// goroutine and waits for it to exit.
func (l *TCPLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conn := l.conn
	ln := l.ln
	var waiters []core.Waiter
	if l.dur != nil {
		waiters = l.dur.txWaiters.TakeAll()
	}
	l.mu.Unlock()
	for _, w := range waiters {
		w.Wake(msgNetWake) // unblocks senders parked on a full journal
	}
	if ln != nil {
		ln.Close() // unblocks a pending Accept on a listener link
	}
	var err error
	if conn != nil {
		err = conn.Close()
	}
	if l.dur != nil && l.inbox != nil {
		// A durable reader may be parked in a blocking inject (full inbox)
		// or already past its terminal frame; closing the inbox unblocks it
		// so readerDone cannot deadlock.  Teardown, not end of stream: the
		// puller must stop quietly, not propagate a bogus EOS downstream.
		l.inbox.closeStopped()
	}
	if l.readerDone != nil {
		<-l.readerDone
	}
	return err
}

// Redial points a sender link at a new peer address: the old connection (if
// any) is closed without an EOS frame — the peer's resumable listener parks
// the lane — and subsequent sends go to the new peer.  On a durable link the
// journal (and any pending EOS) is replayed on the new connection, so the
// stream resumes with zero loss; the peer's dedup watermark drops whatever
// it had already consumed.  The cluster re-placement path uses Redial to
// retarget a stationary upstream at a segment recomposed on another node —
// no pause needed on durable lanes, concurrent sends serialize on the link
// lock and land either before the swap (journaled, replayed) or after.
func (l *TCPLink) Redial(addr string) error {
	conn, err := Dial(addr)
	if err != nil {
		return err
	}
	return l.ResumeConn(conn)
}

// ResumeConn is Redial with the dialing left to the caller: it installs an
// already-established connection on a sender link.  Fault-injection wrappers
// (NewChaosConn) and custom transports plug in here.
func (l *TCPLink) ResumeConn(conn net.Conn) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.Close()
		return core.ErrStopped
	}
	old := l.conn
	l.conn = conn
	var rerr error
	if l.dur != nil {
		l.dur.wdUntil = time.Time{} // fresh connection, no deadline armed
	}
	if l.dur != nil && l.inbox == nil {
		go l.ackLoop(conn)
		rerr = l.replayLocked()
	}
	l.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return rerr
}

// Dropped reports how many inbound frames the receiver side discarded
// (queue-limit overflow or injection after close).  Zero on sender links.
func (l *TCPLink) Dropped() int64 {
	if l.inbox == nil {
		return 0
	}
	return l.inbox.dropped()
}

// NewSink returns the producer-side endpoint component.
func (l *TCPLink) NewSink(name string) core.Component {
	return &tcpSink{Base: core.Base{CompName: name}, link: l}
}

type tcpSink struct {
	core.Base
	link *TCPLink
}

var (
	_ core.Consumer = (*tcpSink)(nil)
	_ core.EOSSink  = (*tcpSink)(nil)
)

// Style implements core.Component.
func (s *tcpSink) Style() core.Style { return core.StyleConsumer }

// InputSpec implements core.Component.
func (s *tcpSink) InputSpec() typespec.Typespec { return typespec.New(ItemTypeWire) }

// Push implements core.Consumer.  A closed link propagates core.ErrStopped
// so the pipeline learns the connection is gone instead of pumping items
// into the void.
func (s *tcpSink) Push(ctx *core.Ctx, it *item.Item) error {
	data, ok := it.Payload.([]byte)
	if !ok {
		return fmt.Errorf("netpipe: tcp sink %q: payload %T is not []byte (insert a marshal filter)", s.Name(), it.Payload)
	}
	// The sender's effective priority (the tenant priority carried by the
	// pump constraint) rides the wire in one byte when it is non-default, so
	// the receiving scheduler enqueues at the sender's priority; default
	// traffic keeps the untagged wire format byte-for-byte.
	prio := uthread.PriorityNormal
	if ctx != nil {
		prio = core.SenderPriority(ctx.Thread())
	}
	var err error
	if s.link.dur != nil {
		// The marshal filter preserved the item's origin and sequence — the
		// durable lane journals and dedups on the pair end to end.
		err = s.link.sendDurable(ctx, it.Origin, it.Seq, data, prio)
	} else if prio != uthread.PriorityNormal {
		err = s.link.sendPrio(prio, data)
	} else {
		err = s.link.send(frameData, data)
	}
	if err == nil {
		it.Recycle() // wire item consumed: its bytes are on the network
	}
	return err
}

// HandleEOS implements core.EOSSink.
func (s *tcpSink) HandleEOS(*core.Ctx) { s.sendEOS() }

// HandleEvent implements core.Component.
func (s *tcpSink) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		s.sendEOS()
	}
}

func (s *tcpSink) sendEOS() {
	if s.link.dur != nil {
		_ = s.link.sendEOSDurable()
		return
	}
	_ = s.link.send(frameEOS, nil)
}

// NewSource returns the consumer-side endpoint component.
func (l *TCPLink) NewSource(name string) core.Component {
	return &tcpSource{Base: core.Base{CompName: name}, link: l}
}

type tcpSource struct {
	core.Base
	link *TCPLink
}

var _ core.Producer = (*tcpSource)(nil)

// Style implements core.Component.
func (s *tcpSource) Style() core.Style { return core.StyleProducer }

// TransformSpec implements core.Component: the location property changes
// at the netpipe (§2.4).
func (s *tcpSource) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	out.ItemType = ItemTypeWire
	if s.link.rxNode != "" {
		out.Location = s.link.rxNode
	}
	return out
}

// Pull implements core.Producer.
func (s *tcpSource) Pull(ctx *core.Ctx) (*item.Item, error) {
	if s.link.dur != nil {
		origin, seq, data, err := s.link.popDurable(ctx.Thread(), ctx.Stopping)
		if err != nil {
			return nil, err
		}
		it := item.New(data, seq, ctx.Now()).WithSize(len(data))
		it.Origin = origin
		return it, nil
	}
	data, err := s.link.inbox.pop(ctx)
	if err != nil {
		return nil, err
	}
	return item.New(data, 0, ctx.Now()).WithSize(len(data)), nil
}

// SenderStages returns the canonical producer-side tail for this link —
// marshal filter plus sink — wired to the default binary codec with the
// streaming gob fallback (TCP is reliable and ordered, so gob type
// descriptors cross the wire once per connection).
func (l *TCPLink) SenderStages(name string) []core.Stage {
	return []core.Stage{
		core.Comp(NewMarshalFilter(name+"/marshal", NewStreamingBinaryMarshaller())),
		core.Comp(l.NewSink(name + "/sink")),
	}
}

// ReceiverStages returns the canonical consumer-side head for this link —
// source plus unmarshal filter — wired to the default binary codec.
func (l *TCPLink) ReceiverStages(name string) []core.Stage {
	return []core.Stage{
		core.Comp(l.NewSource(name + "/source")),
		core.Comp(NewUnmarshalFilter(name+"/unmarshal", NewBinaryMarshaller())),
	}
}

// Listen accepts exactly one inbound connection on addr — the simple
// rendezvous used by the examples and tests.
func Listen(addr string) (net.Conn, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("netpipe: listen %s: %w", addr, err)
	}
	defer ln.Close()
	conn, err := ln.Accept()
	if err != nil {
		return nil, nil, fmt.Errorf("netpipe: accept on %s: %w", addr, err)
	}
	return conn, ln.Addr(), nil
}

// Dial connects to a listening peer.
func Dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netpipe: dial %s: %w", addr, err)
	}
	if w := dialWrap.Load(); w != nil {
		conn = (*w)(conn)
	}
	return conn, nil
}

// dialWrap is the fault-injection seam on outbound data lanes: when set,
// every connection Dial establishes is passed through the wrapper (chaos
// tests install NewChaosConn here to run whole deployments over
// misbehaving lanes).  Nil — a plain passthrough — in production.
var dialWrap atomic.Pointer[func(net.Conn) net.Conn]

// SetDialWrapper installs (or, with nil, removes) the wrapper Dial applies
// to every outbound data-lane connection.  Install before the lanes dial;
// the wrapper must be safe for concurrent use.
func SetDialWrapper(f func(net.Conn) net.Conn) {
	if f == nil {
		dialWrap.Store(nil)
		return
	}
	dialWrap.Store(&f)
}

// ErrNoConn is returned by helpers when no connection is available.
var ErrNoConn = errors.New("netpipe: no connection")
