package pipes

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/trace"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// BoundedBuffer is the standard buffer of §2.1: passive at both ends,
// providing temporary storage and removing rate fluctuations.  Its blocking
// behaviour follows the Typespec model of §2.3: when full, a push either
// blocks the caller or drops the item; when empty, a pull either blocks or
// returns the nil item.
//
// Blocking is integrated with the user-level thread package: a blocked
// operation suspends the calling thread on a wake message, and control
// events are still delivered and dispatched while blocked (§3.2).
type BoundedBuffer struct {
	name     string
	capacity int
	pushPol  typespec.BlockPolicy
	pullPol  typespec.BlockPolicy

	mu      sync.Mutex
	q       []*item.Item
	closed  bool
	sched   *uthread.Scheduler
	nextTok uint64
	// Waiters are threads suspended in Remove (waiting for items) or
	// Insert (waiting for space); each holds a unique wake token.
	itemWaiters  []bufWaiter
	spaceWaiters []bufWaiter

	drops   trace.Counter
	inserts trace.Counter
	removes trace.Counter
	maxFill trace.Gauge
}

type bufWaiter struct {
	th  *uthread.Thread
	tok uint64
}

var _ core.Buffer = (*BoundedBuffer)(nil)

// NewBuffer returns a buffer with the given capacity that blocks on both
// full and empty conditions — the common jitter-removal configuration.
func NewBuffer(name string, capacity int) *BoundedBuffer {
	return NewBufferPolicy(name, capacity, typespec.Block, typespec.Block)
}

// NewDroppingBuffer returns a buffer that drops pushed items when full and
// returns the nil item when empty (fully non-blocking).
func NewDroppingBuffer(name string, capacity int) *BoundedBuffer {
	return NewBufferPolicy(name, capacity, typespec.NonBlock, typespec.NonBlock)
}

// NewBufferPolicy returns a buffer with explicit blocking policies for the
// push (full) and pull (empty) sides.
func NewBufferPolicy(name string, capacity int, push, pull typespec.BlockPolicy) *BoundedBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedBuffer{
		name:     name,
		capacity: capacity,
		pushPol:  push,
		pullPol:  pull,
		q:        make([]*item.Item, 0, capacity),
	}
}

// BindScheduler lets the composition layer attach the scheduler used for
// wake-up messages.
func (b *BoundedBuffer) BindScheduler(s *uthread.Scheduler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sched = s
}

// Name implements core.Buffer.
func (b *BoundedBuffer) Name() string { return b.name }

// Spec implements core.Buffer.
func (b *BoundedBuffer) Spec() (push, pull typespec.BlockPolicy) {
	return b.pushPol, b.pullPol
}

// Len implements core.Buffer.
func (b *BoundedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// Cap implements core.Buffer.
func (b *BoundedBuffer) Cap() int { return b.capacity }

// Drops reports items dropped by the non-blocking push policy.
func (b *BoundedBuffer) Drops() int64 { return b.drops.Value() }

// Inserts reports accepted items.
func (b *BoundedBuffer) Inserts() int64 { return b.inserts.Value() }

// Removes reports removed items.
func (b *BoundedBuffer) Removes() int64 { return b.removes.Value() }

// MaxFill reports the high-water mark of the fill level.
func (b *BoundedBuffer) MaxFill() int64 { return b.maxFill.Value() }

// HandleEvent implements core.Buffer (no standard events).
func (b *BoundedBuffer) HandleEvent(events.Event) {}

// CloseUpstream implements core.Buffer: marks end of stream; blocked and
// future Removes see ErrEOS once the queue drains.
func (b *BoundedBuffer) CloseUpstream() {
	b.mu.Lock()
	b.closed = true
	waiters := b.itemWaiters
	b.itemWaiters = nil
	sched := b.sched
	b.mu.Unlock()
	for _, w := range waiters {
		postWake(sched, w)
	}
}

// Closed reports whether the upstream has ended.
func (b *BoundedBuffer) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Insert implements core.Buffer (the push side).
func (b *BoundedBuffer) Insert(ctx *core.Ctx, it *item.Item) error {
	t := ctx.Thread()
	for {
		b.mu.Lock()
		if len(b.q) < b.capacity {
			b.q = append(b.q, it)
			if n := int64(len(b.q)); n > b.maxFill.Value() {
				b.maxFill.Set(n)
			}
			b.inserts.Inc()
			b.wakeOneLocked(&b.itemWaiters)
			b.mu.Unlock()
			return nil
		}
		if b.pushPol == typespec.NonBlock {
			b.drops.Inc()
			b.mu.Unlock()
			return nil // drop the pushed item (§2.3)
		}
		if ctx.Stopping() {
			if ctx.Detaching() {
				// Migration teardown interrupted a blocked push: the buffer
				// outlives the section's threads, so force-complete the
				// handoff over capacity rather than lose the item in hand.
				// The overshoot is bounded by the number of blocked pushers
				// and drains once the recomposed pipeline resumes.
				b.q = append(b.q, it)
				if n := int64(len(b.q)); n > b.maxFill.Value() {
					b.maxFill.Set(n)
				}
				b.inserts.Inc()
				b.wakeOneLocked(&b.itemWaiters)
				b.mu.Unlock()
				return nil
			}
			b.mu.Unlock()
			return core.ErrStopped
		}
		tok := b.registerLocked(&b.spaceWaiters, t)
		b.mu.Unlock()
		if err := b.await(ctx, t, tok); err != nil {
			if ctx.Detaching() {
				continue // re-enter: the detach branch above completes the push
			}
			return err
		}
	}
}

// Remove implements core.Buffer (the pull side).
func (b *BoundedBuffer) Remove(ctx *core.Ctx) (*item.Item, error) {
	t := ctx.Thread()
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			it := b.q[0]
			copy(b.q, b.q[1:])
			b.q = b.q[:len(b.q)-1]
			b.removes.Inc()
			b.wakeOneLocked(&b.spaceWaiters)
			b.mu.Unlock()
			return it, nil
		}
		if b.closed {
			b.mu.Unlock()
			return nil, core.ErrEOS
		}
		if b.pullPol == typespec.NonBlock {
			b.mu.Unlock()
			return nil, nil // the nil item (§2.3)
		}
		if ctx.Stopping() {
			b.mu.Unlock()
			return nil, core.ErrStopped
		}
		tok := b.registerLocked(&b.itemWaiters, t)
		b.mu.Unlock()
		if err := b.await(ctx, t, tok); err != nil {
			return nil, err
		}
	}
}

// await suspends the calling thread until its wake token arrives,
// dispatching control events that arrive in the meantime (§3.2).  On
// return, the waiter registration and any in-flight wake are consumed.
func (b *BoundedBuffer) await(ctx *core.Ctx, t *uthread.Thread, tok uint64) error {
	isWake := func(m uthread.Message) bool {
		w, ok := m.Data.(uint64)
		return m.Kind == core.MsgBufferWake && ok && w == tok
	}
	for {
		m := t.ReceiveMatch(func(m uthread.Message) bool {
			return isWake(m) || events.IsControl(m)
		})
		if isWake(m) {
			b.deregister(tok)
			return nil
		}
		t.DispatchControl(m)
		if ctx.Stopping() {
			if !b.deregister(tok) {
				// A wake was already posted; consume it so it cannot
				// confuse a later wait.
				t.TryReceive(isWake)
			}
			return core.ErrStopped
		}
	}
}

// registerLocked adds the thread to a waiter list and returns its token.
func (b *BoundedBuffer) registerLocked(list *[]bufWaiter, t *uthread.Thread) uint64 {
	b.nextTok++
	*list = append(*list, bufWaiter{th: t, tok: b.nextTok})
	return b.nextTok
}

// deregister removes the token from whichever list holds it, reporting
// whether it was still registered (false means a wake is in flight).
func (b *BoundedBuffer) deregister(tok uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, list := range []*[]bufWaiter{&b.itemWaiters, &b.spaceWaiters} {
		for i, w := range *list {
			if w.tok == tok {
				*list = append((*list)[:i], (*list)[i+1:]...)
				return true
			}
		}
	}
	return false
}

// wakeOneLocked pops the first waiter and posts its wake message.
func (b *BoundedBuffer) wakeOneLocked(list *[]bufWaiter) {
	if len(*list) == 0 {
		return
	}
	w := (*list)[0]
	*list = (*list)[1:]
	postWake(b.sched, w)
}

func postWake(sched *uthread.Scheduler, w bufWaiter) {
	if sched == nil {
		return
	}
	sched.Post(w.th, uthread.Message{
		Kind:       core.MsgBufferWake,
		Data:       w.tok,
		Constraint: uthread.At(uthread.PriorityHigh),
	})
}
