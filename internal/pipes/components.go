package pipes

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/trace"
	"infopipes/internal/typespec"
)

// GeneratorSource is a passive producer-style source: each pull produces
// the next item from a generator function.
type GeneratorSource struct {
	core.Base
	spec  typespec.Typespec
	limit int64
	gen   func(ctx *core.Ctx, seq int64) (*item.Item, error)
	seq   int64
}

var _ core.Producer = (*GeneratorSource)(nil)

// NewGeneratorSource builds a source producing items from gen.  A limit of
// 0 means unbounded; otherwise the source ends the stream after limit
// items.  spec describes the flow the source supplies (§2.3: properties
// originate from sources).
func NewGeneratorSource(name string, spec typespec.Typespec, limit int64,
	gen func(ctx *core.Ctx, seq int64) (*item.Item, error)) *GeneratorSource {
	return &GeneratorSource{Base: core.Base{CompName: name}, spec: spec, limit: limit, gen: gen}
}

// NewCounterSource produces limit items whose payloads are their sequence
// numbers — the workhorse of tests and microbenchmarks.
func NewCounterSource(name string, limit int64) *GeneratorSource {
	return NewGeneratorSource(name, typespec.New("test/counter"), limit,
		func(ctx *core.Ctx, seq int64) (*item.Item, error) {
			return item.New(seq, seq, ctx.Now()).WithSize(8), nil
		})
}

// Style implements core.Component.
func (s *GeneratorSource) Style() core.Style { return core.StyleProducer }

// TransformSpec implements core.Component: the source originates the flow
// properties.
func (s *GeneratorSource) TransformSpec(typespec.Typespec) typespec.Typespec { return s.spec }

// Pull implements core.Producer.
func (s *GeneratorSource) Pull(ctx *core.Ctx) (*item.Item, error) {
	if s.limit > 0 && s.seq >= s.limit {
		return nil, core.ErrEOS
	}
	s.seq++
	return s.gen(ctx, s.seq)
}

// Produced reports how many items the source has produced.
func (s *GeneratorSource) Produced() int64 { return s.seq }

// CollectSink is a passive consumer-style sink that retains items and
// computes arrival statistics (latency from item creation, inter-arrival
// jitter) — the measuring endpoint of most experiments.
type CollectSink struct {
	core.Base
	mu       sync.Mutex
	items    []*item.Item
	latency  trace.Series
	arrivals trace.Series
	eos      bool
}

var (
	_ core.Consumer = (*CollectSink)(nil)
	_ core.EOSSink  = (*CollectSink)(nil)
)

// NewCollectSink builds an empty collecting sink.
func NewCollectSink(name string) *CollectSink {
	return &CollectSink{Base: core.Base{CompName: name}}
}

// Style implements core.Component.
func (s *CollectSink) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer.
func (s *CollectSink) Push(ctx *core.Ctx, it *item.Item) error {
	now := ctx.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, it)
	s.latency.ObserveDuration(it.Age(now))
	s.arrivals.Observe(float64(now.UnixNano()) / 1e9)
	return nil
}

// HandleEOS implements core.EOSSink.
func (s *CollectSink) HandleEOS(*core.Ctx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eos = true
}

// SawEOS reports whether end-of-stream reached the sink.
func (s *CollectSink) SawEOS() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eos
}

// Items returns the collected items.
func (s *CollectSink) Items() []*item.Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*item.Item, len(s.items))
	copy(out, s.items)
	return out
}

// Count reports the number of collected items.
func (s *CollectSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Latency exposes the per-item latency series (seconds).
func (s *CollectSink) Latency() *trace.Series { return &s.latency }

// ArrivalJitter reports the mean absolute deviation of inter-arrival
// spacing in seconds: the display-jitter metric of experiment E10.
func (s *CollectSink) ArrivalJitter() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.arrivals.Snapshot()
	if len(snap) < 3 {
		return 0
	}
	gaps := make([]float64, len(snap)-1)
	for i := 1; i < len(snap); i++ {
		gaps[i-1] = snap[i] - snap[i-1]
	}
	var g trace.Series
	for _, v := range gaps {
		g.Observe(v)
	}
	return g.Jitter()
}

// FuncSink is a consumer-style sink calling fn per item.
type FuncSink struct {
	core.Base
	fn func(ctx *core.Ctx, it *item.Item) error
}

var _ core.Consumer = (*FuncSink)(nil)

// NewFuncSink builds a sink around fn.
func NewFuncSink(name string, fn func(ctx *core.Ctx, it *item.Item) error) *FuncSink {
	return &FuncSink{Base: core.Base{CompName: name}, fn: fn}
}

// Style implements core.Component.
func (s *FuncSink) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer.
func (s *FuncSink) Push(ctx *core.Ctx, it *item.Item) error { return s.fn(ctx, it) }

// NullSink discards items, recycling them to the freelist (benchmark
// baseline).
func NullSink(name string) *FuncSink {
	return NewFuncSink(name, func(_ *core.Ctx, it *item.Item) error {
		it.Recycle()
		return nil
	})
}

// FuncFilter is a function-style component built from a conversion
// closure: the paper's item fct(item) style, directly usable in both push
// and pull mode.  Returning (nil, nil) filters the item out.
type FuncFilter struct {
	core.Base
	input typespec.Typespec
	xform typespec.Transform
	fn    func(ctx *core.Ctx, it *item.Item) (*item.Item, error)
}

var _ core.Function = (*FuncFilter)(nil)

// NewFuncFilter builds a function-style filter.
func NewFuncFilter(name string, fn func(ctx *core.Ctx, it *item.Item) (*item.Item, error)) *FuncFilter {
	return &FuncFilter{Base: core.Base{CompName: name}, fn: fn}
}

// WithInputSpec declares the filter's input requirements (builder style).
func (f *FuncFilter) WithInputSpec(ts typespec.Typespec) *FuncFilter {
	f.input = ts
	return f
}

// WithTransform declares the filter's Typespec transformation.
func (f *FuncFilter) WithTransform(tr typespec.Transform) *FuncFilter {
	f.xform = tr
	return f
}

// Style implements core.Component.
func (f *FuncFilter) Style() core.Style { return core.StyleFunction }

// InputSpec implements core.Component.
func (f *FuncFilter) InputSpec() typespec.Typespec { return f.input }

// TransformSpec implements core.Component.
func (f *FuncFilter) TransformSpec(in typespec.Typespec) typespec.Typespec {
	return f.xform.Apply(in)
}

// Convert implements core.Function.
func (f *FuncFilter) Convert(ctx *core.Ctx, it *item.Item) (*item.Item, error) {
	return f.fn(ctx, it)
}

// CountingProbe is a transparent function-style stage counting items and
// bytes — the measurement probe of the experiments.
type CountingProbe struct {
	core.Base
	items trace.Counter
	bytes trace.Counter
}

var _ core.Function = (*CountingProbe)(nil)

// NewCountingProbe builds a probe.
func NewCountingProbe(name string) *CountingProbe {
	return &CountingProbe{Base: core.Base{CompName: name}}
}

// Style implements core.Component.
func (p *CountingProbe) Style() core.Style { return core.StyleFunction }

// Convert implements core.Function.
func (p *CountingProbe) Convert(_ *core.Ctx, it *item.Item) (*item.Item, error) {
	p.items.Inc()
	p.bytes.Add(int64(it.Size))
	return it, nil
}

// Items reports the number of items seen.
func (p *CountingProbe) Items() int64 { return p.items.Value() }

// Bytes reports the number of payload bytes seen.
func (p *CountingProbe) Bytes() int64 { return p.bytes.Value() }

// DelayFilter is a function-style stage that models per-item processing
// cost (a decoder's decode time) by sleeping on the scheduler clock.
type DelayFilter struct {
	core.Base
	cost func(it *item.Item) (d int64)
}

var _ core.Function = (*DelayFilter)(nil)

// NewDelayFilter builds a stage whose per-item cost in nanoseconds is
// computed by cost.
func NewDelayFilter(name string, cost func(it *item.Item) int64) *DelayFilter {
	return &DelayFilter{Base: core.Base{CompName: name}, cost: cost}
}

// Style implements core.Component.
func (d *DelayFilter) Style() core.Style { return core.StyleFunction }

// Convert implements core.Function.
func (d *DelayFilter) Convert(ctx *core.Ctx, it *item.Item) (*item.Item, error) {
	if ns := d.cost(it); ns > 0 {
		ctx.Thread().SleepFor(nsToDuration(ns))
	}
	return it, nil
}

// DropFilter drops items according to an adjustable drop level, consulting
// a policy function.  The level is set by drop-level control events from a
// feedback controller (§2.1: "the dropping is controlled by a feedback
// mechanism ... this lets us control which data is dropped rather than
// incurring arbitrary dropping in the network").
type DropFilter struct {
	core.Base
	mu      sync.Mutex
	level   int
	policy  func(it *item.Item, level int) bool // true = drop
	dropped trace.Counter
	passed  trace.Counter
}

var _ core.Function = (*DropFilter)(nil)

// NewDropFilter builds a drop filter.  policy reports whether an item
// should be dropped at a given level; level 0 conventionally drops nothing.
func NewDropFilter(name string, policy func(it *item.Item, level int) bool) *DropFilter {
	return &DropFilter{Base: core.Base{CompName: name}, policy: policy}
}

// Style implements core.Component.
func (f *DropFilter) Style() core.Style { return core.StyleFunction }

// SetLevel adjusts the dropping aggressiveness.
func (f *DropFilter) SetLevel(level int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if level < 0 {
		level = 0
	}
	f.level = level
}

// Level reports the current drop level.
func (f *DropFilter) Level() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.level
}

// Dropped reports the number of dropped items.
func (f *DropFilter) Dropped() int64 { return f.dropped.Value() }

// Passed reports the number of forwarded items.
func (f *DropFilter) Passed() int64 { return f.passed.Value() }

// HandleEvent implements core.Component: drop-level events carry an int.
func (f *DropFilter) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type != events.DropLevel {
		return
	}
	if lvl, ok := ev.Data.(int); ok {
		f.SetLevel(lvl)
	}
}

// Convert implements core.Function.
func (f *DropFilter) Convert(_ *core.Ctx, it *item.Item) (*item.Item, error) {
	if f.policy != nil && f.policy(it, f.Level()) {
		f.dropped.Inc()
		it.Recycle() // dropped: this filter is the item's terminal owner
		return nil, nil
	}
	f.passed.Inc()
	return it, nil
}
