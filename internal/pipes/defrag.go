package pipes

import (
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
)

// This file implements the paper's running example (§3.3, Figs 4, 6, 8):
// a defragmenter that combines two data items into one, written in each of
// the activity styles the middleware supports, plus the fragmenter duals.
// Experiment E3 verifies that all implementations exhibit identical
// external activity regardless of the pipeline position they are used in.

// Assemble combines two items into one, the paper's y = assemble(x1, x2).
type Assemble func(a, b *item.Item) *item.Item

// PairAssemble is the default assembly: the payloads are paired into a
// []any, sizes add, and the sequence number of the first part is kept.
func PairAssemble(a, b *item.Item) *item.Item {
	out := item.New([]any{a.Payload, b.Payload}, a.Seq, earlier(a.Created, b.Created))
	out.Size = a.Size + b.Size
	return out
}

func earlier(a, b time.Time) time.Time {
	if b.Before(a) {
		return b
	}
	return a
}

// DefragConsumer is the passive push-style defragmenter of Fig 4a: the
// programmer explicitly maintains state between invocations via the saved
// variable.
type DefragConsumer struct {
	core.Base
	assemble Assemble
	saved    *item.Item
}

var _ core.Consumer = (*DefragConsumer)(nil)

// NewDefragConsumer builds the push-style defragmenter.  A nil assemble
// uses PairAssemble.
func NewDefragConsumer(name string, assemble Assemble) *DefragConsumer {
	if assemble == nil {
		assemble = PairAssemble
	}
	return &DefragConsumer{Base: core.Base{CompName: name}, assemble: assemble}
}

// Style implements core.Component.
func (d *DefragConsumer) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer, exactly as in Fig 4a: every other call
// causes a downstream push; otherwise the item is saved and the call
// returns directly.
func (d *DefragConsumer) Push(ctx *core.Ctx, x *item.Item) error {
	if d.saved != nil {
		y := d.assemble(d.saved, x)
		d.saved = nil
		return ctx.PushDownstream(y)
	}
	d.saved = x
	return nil
}

// DefragProducer is the passive pull-style defragmenter of Fig 4b: each
// invocation travels all the way through the code, triggering two upstream
// pulls — no state between invocations is needed.
type DefragProducer struct {
	core.Base
	assemble Assemble
}

var _ core.Producer = (*DefragProducer)(nil)

// NewDefragProducer builds the pull-style defragmenter.
func NewDefragProducer(name string, assemble Assemble) *DefragProducer {
	if assemble == nil {
		assemble = PairAssemble
	}
	return &DefragProducer{Base: core.Base{CompName: name}, assemble: assemble}
}

// Style implements core.Component.
func (d *DefragProducer) Style() core.Style { return core.StyleProducer }

// Pull implements core.Producer, exactly as in Fig 4b.
func (d *DefragProducer) Pull(ctx *core.Ctx) (*item.Item, error) {
	x1, err := ctx.PullUpstream()
	if err != nil {
		return nil, err
	}
	if x1 == nil {
		return nil, nil
	}
	x2, err := ctx.PullUpstream()
	if err != nil {
		return nil, err
	}
	if x2 == nil {
		return nil, nil
	}
	return d.assemble(x1, x2), nil
}

// DefragActive is the active-object defragmenter of Fig 6: a main loop
// freely mixing receive and send, the style the paper notes most
// programmers are familiar with.
type DefragActive struct {
	core.Base
	assemble Assemble
}

var _ core.Active = (*DefragActive)(nil)

// NewDefragActive builds the active defragmenter.
func NewDefragActive(name string, assemble Assemble) *DefragActive {
	if assemble == nil {
		assemble = PairAssemble
	}
	return &DefragActive{Base: core.Base{CompName: name}, assemble: assemble}
}

// Style implements core.Component.
func (d *DefragActive) Style() core.Style { return core.StyleActive }

// Run implements core.Active, exactly as in Fig 6:
//
//	while (running) { x1=pull(); x2=pull(); y=assemble(x1,x2); push(y); }
func (d *DefragActive) Run(ctx *core.Ctx) error {
	for !ctx.Stopping() {
		x1, err := ctx.PullUpstream()
		if err != nil {
			return err
		}
		if x1 == nil {
			continue
		}
		x2, err := ctx.PullUpstream()
		if err != nil {
			return err
		}
		if x2 == nil {
			continue
		}
		if err := ctx.PushDownstream(d.assemble(x1, x2)); err != nil {
			return err
		}
	}
	return nil
}

// Fragment splits one item into parts, the fragmenter's dual of Assemble.
type Fragment func(it *item.Item) []*item.Item

// PairFragment splits an item whose payload is a []any pair back into its
// two halves (the inverse of PairAssemble).
func PairFragment(it *item.Item) []*item.Item {
	pair, ok := it.Payload.([]any)
	if !ok || len(pair) != 2 {
		return []*item.Item{it}
	}
	half := it.Size / 2
	a := item.New(pair[0], it.Seq, it.Created).WithSize(half)
	b := item.New(pair[1], it.Seq+1, it.Created).WithSize(it.Size - half)
	return []*item.Item{a, b}
}

// FragConsumer is the push-style fragmenter: for a fragmenter, push is the
// simpler operation (the paper's observation inverted from the
// defragmenter).
type FragConsumer struct {
	core.Base
	fragment Fragment
}

var _ core.Consumer = (*FragConsumer)(nil)

// NewFragConsumer builds the push-style fragmenter.
func NewFragConsumer(name string, fragment Fragment) *FragConsumer {
	if fragment == nil {
		fragment = PairFragment
	}
	return &FragConsumer{Base: core.Base{CompName: name}, fragment: fragment}
}

// Style implements core.Component.
func (f *FragConsumer) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer: one incoming item yields several
// downstream pushes.
func (f *FragConsumer) Push(ctx *core.Ctx, it *item.Item) error {
	for _, part := range f.fragment(it) {
		if err := ctx.PushDownstream(part); err != nil {
			return err
		}
	}
	return nil
}

// FragProducer is the pull-style fragmenter: it must maintain the pending
// parts between invocations, the mirror image of the defragmenter's saved
// variable.
type FragProducer struct {
	core.Base
	fragment Fragment
	pending  []*item.Item
}

var _ core.Producer = (*FragProducer)(nil)

// NewFragProducer builds the pull-style fragmenter.
func NewFragProducer(name string, fragment Fragment) *FragProducer {
	if fragment == nil {
		fragment = PairFragment
	}
	return &FragProducer{Base: core.Base{CompName: name}, fragment: fragment}
}

// Style implements core.Component.
func (f *FragProducer) Style() core.Style { return core.StyleProducer }

// Pull implements core.Producer.
func (f *FragProducer) Pull(ctx *core.Ctx) (*item.Item, error) {
	if len(f.pending) > 0 {
		it := f.pending[0]
		f.pending = f.pending[1:]
		return it, nil
	}
	in, err := ctx.PullUpstream()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, nil
	}
	parts := f.fragment(in)
	if len(parts) == 0 {
		return nil, nil
	}
	f.pending = parts[1:]
	return parts[0], nil
}

// FragActive is the active-object fragmenter.
type FragActive struct {
	core.Base
	fragment Fragment
}

var _ core.Active = (*FragActive)(nil)

// NewFragActive builds the active fragmenter.
func NewFragActive(name string, fragment Fragment) *FragActive {
	if fragment == nil {
		fragment = PairFragment
	}
	return &FragActive{Base: core.Base{CompName: name}, fragment: fragment}
}

// Style implements core.Component.
func (f *FragActive) Style() core.Style { return core.StyleActive }

// Run implements core.Active.
func (f *FragActive) Run(ctx *core.Ctx) error {
	for !ctx.Stopping() {
		in, err := ctx.PullUpstream()
		if err != nil {
			return err
		}
		if in == nil {
			continue
		}
		for _, part := range f.fragment(in) {
			if err := ctx.PushDownstream(part); err != nil {
				return err
			}
		}
	}
	return nil
}
