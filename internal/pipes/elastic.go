package pipes

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// This file implements the replica scale-out tees: an ElasticTee spreads one
// seq-ordered trunk over N replica branches of the SAME stage, and an
// OrderedMerge reconstructs the exact trunk order on the far side.  Together
// they make replica count a pure runtime knob: however many replicas are
// active and however their threads interleave, the merged output is the
// byte-identical trunk stream, so every trace downstream of the merge is
// independent of the scaling decisions — the elastic form of the paper's
// thread-transparency claim.
//
// Contract: the stream entering the split must carry contiguous ascending
// Seq numbers (the planner's sources all do), and the scaled stage must be
// 1:1 — one item out per item in, Seq preserved.  A dropping or reordering
// stage behind an ElasticTee would stall the OrderedMerge until end of
// stream (where remaining items flush in seq order).

// ElasticTee is the replica splitter: out-port i feeds replica i, and each
// item goes to exactly one replica, chosen by the pure selector
// (Seq-1) mod active.  Unlike RouteTee's fixed selector, `active` is a live
// knob (SetActive): raising it spreads new items over more replicas,
// lowering it starves the idle ones — no quiesce, no detach, no item ever
// dropped, because the selector stays total over 1..active and every port
// stays attached.
//
// The tee also publishes the Seq of the first item it ever forwards (Base),
// so an OrderedMerge born in the same mid-stream edit knows where the
// reconstructed stream starts.
type ElasticTee struct {
	core.Base
	outs     []*BoundedBuffer
	ended    bool
	capacity int
	push     typespec.BlockPolicy
	pull     typespec.BlockPolicy
	active   atomic.Int32
	base     atomic.Int64 // Seq of the first forwarded item; 0 until seen
}

var (
	_ core.Consumer   = (*ElasticTee)(nil)
	_ core.EOSSink    = (*ElasticTee)(nil)
	_ core.SplitPoint = (*ElasticTee)(nil)
)

// NewElasticTee builds a replica splitter with n out-ports, all initially
// active, backed by buffers of the given capacity and blocking policies.
func NewElasticTee(name string, n, capacity int, push, pull typespec.BlockPolicy) *ElasticTee {
	t := &ElasticTee{Base: core.Base{CompName: name}, capacity: capacity, push: push, pull: pull}
	for i := 0; i < n; i++ {
		t.outs = append(t.outs, NewBufferPolicy(fmt.Sprintf("%s.out%d", name, i), capacity, push, pull))
	}
	t.active.Store(int32(n))
	return t
}

// AddOut grows the tee by one out-port (one more replica slot) and makes it
// active.  Born closed if the trunk already ended.  Quiesce-only, like the
// other tees' port surgery.
func (t *ElasticTee) AddOut() int {
	i := len(t.outs)
	b := NewBufferPolicy(fmt.Sprintf("%s.out%d", t.Name(), i), t.capacity, t.push, t.pull)
	t.outs = append(t.outs, b)
	t.active.Store(int32(len(t.outs)))
	if t.ended {
		b.CloseUpstream()
	}
	return i
}

// SetActive retunes how many replicas receive new items, clamped to
// 1..Outs().  Safe against a running trunk — the selector reads it
// atomically per item — so scale-out and fold-back need no quiesce.  Items
// already buffered at an idle replica still drain; the replica simply gets
// no new ones.  Returns the clamped value.
func (t *ElasticTee) SetActive(n int) int {
	if n < 1 {
		n = 1
	}
	if n > len(t.outs) {
		n = len(t.outs)
	}
	t.active.Store(int32(n))
	return n
}

// Active reports the current number of item-receiving replicas.
func (t *ElasticTee) Active() int { return int(t.active.Load()) }

// BaseRef exposes the first-forwarded-Seq cell for pairing with an
// OrderedMerge (see NewOrderedMerge).
func (t *ElasticTee) BaseRef() *atomic.Int64 { return &t.base }

// BindScheduler forwards the scheduler binding to the internal buffers.
func (t *ElasticTee) BindScheduler(s *uthread.Scheduler) {
	for _, b := range t.outs {
		b.BindScheduler(s)
	}
}

// Style implements core.Component.
func (t *ElasticTee) Style() core.Style { return core.StyleConsumer }

// Wrappable implements core.Component: like the value-routing switch, the
// replica splitter only works in push style (§3.3).
func (t *ElasticTee) Wrappable() bool { return false }

// Push implements core.Consumer: one replica per item, by Seq.
func (t *ElasticTee) Push(ctx *core.Ctx, it *item.Item) error {
	if t.base.Load() == 0 {
		// Published before the item is forwarded, so any item reaching the
		// paired OrderedMerge finds the base already set.
		t.base.Store(it.Seq)
	}
	n := int64(t.active.Load())
	i := (it.Seq - 1) % n
	if i < 0 {
		i += n
	}
	return t.outs[i].Insert(ctx, it)
}

// HandleEOS implements core.EOSSink: the trunk's end closes every replica
// buffer, active or idle, so all branch pipelines drain and end.
func (t *ElasticTee) HandleEOS(*core.Ctx) {
	t.ended = true
	for _, b := range t.outs {
		b.CloseUpstream()
	}
}

// HandleEvent implements core.Component.
func (t *ElasticTee) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		t.HandleEOS(nil)
	}
}

// Out returns the i-th out-port as a passive source for a replica branch.
func (t *ElasticTee) Out(i int) *BufferSource {
	return NewBufferSource(fmt.Sprintf("%s.src%d", t.Name(), i), t.outs[i])
}

// OutBuffer exposes the i-th internal buffer.
func (t *ElasticTee) OutBuffer(i int) *BoundedBuffer { return t.outs[i] }

// Outs implements core.SplitPoint.
func (t *ElasticTee) Outs() int { return len(t.outs) }

// OutPort implements core.SplitPoint.
func (t *ElasticTee) OutPort(i int) core.Component { return t.Out(i) }

// OrderedMerge joins the replica branches back into one stream in ascending
// Seq order — the exact stream the ElasticTee split — holding out-of-order
// arrivals in a reorder window.  Unlike MergeTee it does NOT re-stamp item
// Origin: its output is the reconstructed trunk, already unique and
// monotone per origin, so durable lanes downstream journal it unchanged.
//
// Mutual exclusion notes: the in-ports are sinks of branch pipelines, which
// the planner composes on the merge's own shard, so data-path pushes are
// already serialized by the scheduler.  The mutex exists for the
// out-of-band paths (Stop events arrive on the deployment's goroutine) and
// is never held across a blocking buffer Insert — a release in progress is
// marked by `draining` and other entrants just deposit and leave.
type OrderedMerge struct {
	core.Base
	out *BoundedBuffer
	ins int

	mu       sync.Mutex
	base     *atomic.Int64 // optional: paired ElasticTee's first Seq
	next     int64         // next Seq to release; 0 until adopted
	pending  map[int64]*item.Item
	draining bool
	open     int
	inEnded  []bool
	closed   bool
}

var _ core.MergePoint = (*OrderedMerge)(nil)

// NewOrderedMerge builds a seq-ordering merger for n replica branches.
// base, when non-nil, is the paired ElasticTee's BaseRef — the Seq the
// reconstructed stream starts at, which a mid-stream edit cannot know in
// advance; nil starts at Seq 1 (a fresh deployment's source stream).
func NewOrderedMerge(name string, n, capacity int, push, pull typespec.BlockPolicy, base *atomic.Int64) *OrderedMerge {
	return &OrderedMerge{
		Base:    core.Base{CompName: name},
		out:     NewBufferPolicy(name+".out", capacity, push, pull),
		ins:     n,
		base:    base,
		pending: make(map[int64]*item.Item),
		open:    n,
		inEnded: make([]bool, n),
	}
}

// BindScheduler forwards the scheduler binding to the internal buffer.
func (t *OrderedMerge) BindScheduler(s *uthread.Scheduler) { t.out.BindScheduler(s) }

// In returns the i-th input as a sink component for a replica branch.
func (t *OrderedMerge) In(i int) *OrderedMergeIn {
	return &OrderedMergeIn{Base: core.Base{CompName: fmt.Sprintf("%s.in%d", t.Name(), i)}, tee: t, idx: i}
}

// Out returns the reconstructed stream as a passive source.
func (t *OrderedMerge) Out() *BufferSource { return NewBufferSource(t.Name()+".src", t.out) }

// OutBuffer exposes the internal buffer.
func (t *OrderedMerge) OutBuffer() *BoundedBuffer { return t.out }

// Ins implements core.MergePoint.
func (t *OrderedMerge) Ins() int { return t.ins }

// InPort implements core.MergePoint.
func (t *OrderedMerge) InPort(i int) core.Component { return t.In(i) }

// OutPort implements core.MergePoint.
func (t *OrderedMerge) OutPort() core.Component { return t.Out() }

// Pending reports the current reorder-window occupancy (tests, sensors).
func (t *OrderedMerge) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// push deposits one arrival and releases the contiguous run starting at
// next.  Only one thread releases at a time; concurrent entrants deposit
// and return, and the releasing thread re-checks the window after every
// Insert, so no ready item is ever stranded.
func (t *OrderedMerge) push(ctx *core.Ctx, it *item.Item) error {
	t.mu.Lock()
	if t.next == 0 {
		t.next = 1
		if t.base != nil {
			if b := t.base.Load(); b > 0 {
				t.next = b
			}
		}
	}
	t.pending[it.Seq] = it
	return t.release(ctx)
}

// release drains the reorder window; called with mu held, returns with mu
// released.  Once every input has ended it also flushes what remains in
// ascending Seq order (tolerating gaps, so a non-1:1 scaled stage cannot
// wedge the stream forever) and closes the output.
func (t *OrderedMerge) release(ctx *core.Ctx) error {
	if t.draining || t.closed {
		t.mu.Unlock()
		return nil
	}
	t.draining = true
	for {
		nx, ok := t.pending[t.next]
		if !ok {
			if t.open == 0 {
				// Last input ended while (or before) this release ran:
				// flush the stragglers beyond the gap and close.
				err := t.flushAndClose(ctx)
				t.mu.Lock()
				t.draining = false
				t.mu.Unlock()
				return err
			}
			t.draining = false
			t.mu.Unlock()
			return nil
		}
		delete(t.pending, t.next)
		t.next++
		t.mu.Unlock()
		if err := t.out.Insert(ctx, nx); err != nil {
			t.mu.Lock()
			t.draining = false
			t.mu.Unlock()
			return err
		}
		t.mu.Lock()
	}
}

// flushAndClose emits everything left in the window in ascending Seq order
// and closes the output; called with mu held, returns with mu released.
func (t *OrderedMerge) flushAndClose(ctx *core.Ctx) error {
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	seqs := make([]int64, 0, len(t.pending))
	for s := range t.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	rest := make([]*item.Item, 0, len(seqs))
	for _, s := range seqs {
		rest = append(rest, t.pending[s])
		delete(t.pending, s)
	}
	t.mu.Unlock()
	var err error
	for _, it := range rest {
		if ctx == nil {
			// Stop-event path: the stream is being aborted, nothing may
			// block — the window's leftovers are abandoned with it.
			break
		}
		if err = t.out.Insert(ctx, it); err != nil {
			break
		}
	}
	t.out.CloseUpstream()
	return err
}

// inputDone records the end of branch i (idempotent per port, like
// MergeTee): when the last branch ends, the window flushes and the output
// closes.  ctx is nil on the Stop-event path, where pending items are
// dropped rather than flushed.
func (t *OrderedMerge) inputDone(ctx *core.Ctx, i int) {
	t.mu.Lock()
	if i < 0 || i >= len(t.inEnded) || t.inEnded[i] {
		t.mu.Unlock()
		return
	}
	t.inEnded[i] = true
	t.open--
	if t.open != 0 || t.draining || t.closed {
		// A release in progress observes open==0 and flushes itself.
		t.mu.Unlock()
		return
	}
	t.draining = true
	_ = t.flushAndClose(ctx)
	t.mu.Lock()
	t.draining = false
	t.mu.Unlock()
}

// OrderedMergeIn is one input port of an OrderedMerge.
type OrderedMergeIn struct {
	core.Base
	tee *OrderedMerge
	idx int
}

var (
	_ core.Consumer = (*OrderedMergeIn)(nil)
	_ core.EOSSink  = (*OrderedMergeIn)(nil)
)

// Style implements core.Component.
func (m *OrderedMergeIn) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer.  Origin is deliberately left untouched:
// the merged output is the reconstructed trunk stream.
func (m *OrderedMergeIn) Push(ctx *core.Ctx, it *item.Item) error {
	return m.tee.push(ctx, it)
}

// HandleEOS implements core.EOSSink.
func (m *OrderedMergeIn) HandleEOS(ctx *core.Ctx) { m.tee.inputDone(ctx, m.idx) }

// HandleEvent implements core.Component.
func (m *OrderedMergeIn) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		m.tee.inputDone(nil, m.idx)
	}
}
