package pipes_test

import (
	"testing"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/pipes"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// elasticRing composes source >> ElasticTee >> n replica branches >>
// OrderedMerge >> sink on one scheduler and returns the sink.  branchStage
// (optional) is cloned per branch via the factory to transform items
// mid-branch.
func elasticRing(t *testing.T, s *uthread.Scheduler, tee *pipes.ElasticTee,
	om *pipes.OrderedMerge, count int64, branchStage func(i int) core.Stage) (*core.Pipeline, *pipes.CollectSink) {
	t.Helper()
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", count)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tee.Outs(); i++ {
		stages := []core.Stage{core.Comp(tee.Out(i))}
		if branchStage != nil {
			stages = append(stages, branchStage(i))
		}
		stages = append(stages, core.Pmp(pipes.NewFreePump("bp")), core.Comp(om.In(i)))
		if _, err := core.Compose("branch", s, trunk.Bus(), stages); err != nil {
			t.Fatal(err)
		}
	}
	sink := pipes.NewCollectSink("sink")
	if _, err := core.Compose("fold", s, trunk.Bus(), []core.Stage{
		core.Comp(om.Out()),
		core.Pmp(pipes.NewFreePump("fp")),
		core.Comp(sink),
	}); err != nil {
		t.Fatal(err)
	}
	return trunk, sink
}

func TestElasticTeeSpreadsBySeq(t *testing.T) {
	s := uthread.New()
	tee := pipes.NewElasticTee("el", 3, 16, typespec.Block, typespec.Block)
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 12)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sinks [3]*pipes.CollectSink
	for i := 0; i < 3; i++ {
		sinks[i] = pipes.NewCollectSink("s")
		if _, err := core.Compose("branch", s, trunk.Bus(), []core.Stage{
			core.Comp(tee.Out(i)),
			core.Pmp(pipes.NewFreePump("bp")),
			core.Comp(sinks[i]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Pure selector: item Seq goes to replica (Seq-1) mod 3, exactly one
	// replica per item.
	for i, sink := range sinks {
		if sink.Count() != 4 {
			t.Fatalf("replica %d got %d items, want 4", i, sink.Count())
		}
		for _, it := range sink.Items() {
			if (it.Seq-1)%3 != int64(i) {
				t.Errorf("seq %d on replica %d", it.Seq, i)
			}
		}
	}
	if b := tee.BaseRef().Load(); b != 1 {
		t.Errorf("base = %d, want 1", b)
	}
}

func TestElasticTeeSetActiveClampsAndStarves(t *testing.T) {
	tee := pipes.NewElasticTee("el", 4, 8, typespec.Block, typespec.Block)
	if got := tee.SetActive(0); got != 1 {
		t.Fatalf("SetActive(0) = %d, want clamp to 1", got)
	}
	if got := tee.SetActive(99); got != 4 {
		t.Fatalf("SetActive(99) = %d, want clamp to 4", got)
	}
	if tee.Active() != 4 {
		t.Fatalf("Active = %d", tee.Active())
	}

	// Folded back to 1 before the stream runs: every item lands on replica
	// 0, the idle replicas still see end of stream and close.
	tee.SetActive(1)
	s := uthread.New()
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 9)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sinks [4]*pipes.CollectSink
	for i := 0; i < 4; i++ {
		sinks[i] = pipes.NewCollectSink("s")
		if _, err := core.Compose("branch", s, trunk.Bus(), []core.Stage{
			core.Comp(tee.Out(i)),
			core.Pmp(pipes.NewFreePump("bp")),
			core.Comp(sinks[i]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sinks[0].Count() != 9 {
		t.Fatalf("active replica got %d items, want 9", sinks[0].Count())
	}
	for i := 1; i < 4; i++ {
		if sinks[i].Count() != 0 {
			t.Errorf("idle replica %d got %d items", i, sinks[i].Count())
		}
	}
}

func TestElasticTeeAddOut(t *testing.T) {
	tee := pipes.NewElasticTee("el", 2, 8, typespec.Block, typespec.Block)
	if got := tee.AddOut(); got != 2 {
		t.Fatalf("AddOut = %d, want 2", got)
	}
	if tee.Outs() != 3 || tee.Active() != 3 {
		t.Fatalf("outs=%d active=%d after AddOut", tee.Outs(), tee.Active())
	}
	// A port added after the trunk ended is born closed: its branch drains
	// straight to end of stream.
	tee.HandleEOS(nil)
	port := tee.AddOut()
	s := uthread.New()
	sink := pipes.NewCollectSink("s")
	p, err := core.Compose("late", s, nil, []core.Stage{
		core.Comp(tee.Out(port)),
		core.Pmp(pipes.NewFreePump("bp")),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.ReachedEOS() || sink.Count() != 0 {
		t.Fatalf("late branch: eos=%v count=%d", p.ReachedEOS(), sink.Count())
	}
}

func TestOrderedMergeReconstructsTrunk(t *testing.T) {
	// The full scale-out ring: whatever the replica interleaving, the merged
	// output is the exact trunk stream in ascending Seq order.
	s := uthread.New()
	tee := pipes.NewElasticTee("el", 4, 8, typespec.Block, typespec.Block)
	om := pipes.NewOrderedMerge("om", 4, 8, typespec.Block, typespec.Block, tee.BaseRef())
	trunk, sink := elasticRing(t, s, tee, om, 50, nil)
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	items := sink.Items()
	if len(items) != 50 {
		t.Fatalf("merged %d items, want 50", len(items))
	}
	for i, it := range items {
		if it.Seq != int64(i+1) {
			t.Fatalf("order broken at %d: seq %d", i, it.Seq)
		}
	}
	if om.Pending() != 0 {
		t.Errorf("reorder window not drained: %d", om.Pending())
	}
}

func TestOrderedMergeAdoptsBase(t *testing.T) {
	// A mid-stream scale edit splits a trunk that does not start at Seq 1;
	// the merge adopts the tee's first-forwarded Seq instead of stalling on
	// a Seq-1 that will never come.
	s := uthread.New()
	tee := pipes.NewElasticTee("el", 2, 8, typespec.Block, typespec.Block)
	om := pipes.NewOrderedMerge("om", 2, 8, typespec.Block, typespec.Block, tee.BaseRef())
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewGeneratorSource("src", typespec.Typespec{}, 10,
			func(ctx *core.Ctx, seq int64) (*item.Item, error) {
				return item.New(seq+100, seq+100, ctx.Now()), nil
			})),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := core.Compose("branch", s, trunk.Bus(), []core.Stage{
			core.Comp(tee.Out(i)),
			core.Pmp(pipes.NewFreePump("bp")),
			core.Comp(om.In(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sink := pipes.NewCollectSink("sink")
	if _, err := core.Compose("fold", s, trunk.Bus(), []core.Stage{
		core.Comp(om.Out()),
		core.Pmp(pipes.NewFreePump("fp")),
		core.Comp(sink),
	}); err != nil {
		t.Fatal(err)
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	items := sink.Items()
	if len(items) != 10 {
		t.Fatalf("merged %d items, want 10", len(items))
	}
	for i, it := range items {
		if it.Seq != int64(i+101) {
			t.Fatalf("order broken at %d: seq %d, want %d", i, it.Seq, i+101)
		}
	}
}

func TestOrderedMergeFlushesAcrossGaps(t *testing.T) {
	// A non-1:1 replica (drops Seq 7) leaves a hole the merge can never
	// fill; at end of stream the window flushes past the gap in ascending
	// order instead of wedging.
	s := uthread.New()
	tee := pipes.NewElasticTee("el", 3, 16, typespec.Block, typespec.Block)
	om := pipes.NewOrderedMerge("om", 3, 16, typespec.Block, typespec.Block, tee.BaseRef())
	trunk, sink := elasticRing(t, s, tee, om, 20, func(i int) core.Stage {
		return core.Comp(pipes.NewFuncFilter("f", func(_ *core.Ctx, it *item.Item) (*item.Item, error) {
			if it.Seq == 7 {
				return nil, nil // filtered out: a hole in the trunk order
			}
			return it, nil
		}))
	})
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	items := sink.Items()
	if len(items) != 19 {
		t.Fatalf("merged %d items, want 19", len(items))
	}
	last := int64(0)
	for _, it := range items {
		if it.Seq <= last {
			t.Fatalf("order broken: seq %d after %d", it.Seq, last)
		}
		if it.Seq == 7 {
			t.Fatal("dropped item resurfaced")
		}
		last = it.Seq
	}
}
