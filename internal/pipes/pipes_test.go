package pipes_test

import (
	"errors"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/pipes"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// run composes and runs a pipeline on a fresh virtual-clock scheduler.
func run(t *testing.T, stages []core.Stage, opts ...core.ComposeOption) *core.Pipeline {
	t.Helper()
	s := uthread.New()
	p, err := core.Compose("t", s, nil, stages, opts...)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return p
}

// ---------------------------------------------------------------- buffers

func TestBufferFIFOAndCounts(t *testing.T) {
	buf := pipes.NewBuffer("b", 4)
	sink := pipes.NewCollectSink("sink")
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 40)),
		core.Pmp(pipes.NewFreePump("p1")),
		core.Buf(buf),
		core.Pmp(pipes.NewFreePump("p2")),
		core.Comp(sink),
	})
	items := sink.Items()
	if len(items) != 40 {
		t.Fatalf("sink got %d items", len(items))
	}
	for i, it := range items {
		if it.Seq != int64(i+1) {
			t.Fatalf("FIFO violated at %d: seq %d", i, it.Seq)
		}
	}
	if buf.Inserts() != 40 || buf.Removes() != 40 || buf.Drops() != 0 {
		t.Errorf("counts: inserts=%d removes=%d drops=%d", buf.Inserts(), buf.Removes(), buf.Drops())
	}
	if buf.MaxFill() > 4 {
		t.Errorf("capacity exceeded: %d", buf.MaxFill())
	}
	if buf.Len() != 0 {
		t.Errorf("buffer not drained: %d", buf.Len())
	}
}

func TestBufferBlockingThrottlesProducer(t *testing.T) {
	// Producer free-runs into a blocking buffer drained at 100 Hz; the
	// buffer's blocking push must pace the producer to the consumer rate
	// (no drops, bounded fill).
	buf := pipes.NewBuffer("b", 8)
	sink := pipes.NewCollectSink("sink")
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 50)),
		core.Pmp(pipes.NewFreePump("p1")),
		core.Buf(buf),
		core.Pmp(pipes.NewClockedPump("p2", 100)),
		core.Comp(sink),
	})
	if sink.Count() != 50 {
		t.Fatalf("sink got %d items", sink.Count())
	}
	if buf.Drops() != 0 {
		t.Errorf("blocking buffer dropped %d items", buf.Drops())
	}
}

func TestDroppingBufferDropsWhenFull(t *testing.T) {
	// Fast producer into a tiny non-blocking buffer drained slowly: the
	// push policy drops the overflow (§2.3).
	buf := pipes.NewDroppingBuffer("b", 2)
	sink := pipes.NewCollectSink("sink")
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 100)),
		core.Pmp(pipes.NewClockedPump("p1", 1000)),
		core.Buf(buf),
		core.Pmp(pipes.NewClockedPump("p2", 10)),
		core.Comp(sink),
	})
	if buf.Drops() == 0 {
		t.Fatal("non-blocking full buffer never dropped")
	}
	if int64(sink.Count())+buf.Drops() != 100 {
		t.Errorf("conservation violated: sank %d + dropped %d != 100", sink.Count(), buf.Drops())
	}
}

func TestBufferPolicySpec(t *testing.T) {
	buf := pipes.NewBufferPolicy("b", 3, typespec.NonBlock, typespec.Block)
	push, pull := buf.Spec()
	if push != typespec.NonBlock || pull != typespec.Block {
		t.Fatalf("Spec = %v,%v", push, pull)
	}
	if buf.Cap() != 3 {
		t.Fatalf("Cap = %d", buf.Cap())
	}
	// Capacity is clamped to >= 1.
	if pipes.NewBuffer("tiny", 0).Cap() != 1 {
		t.Error("zero capacity not clamped")
	}
}

func TestBufferCloseUpstreamEOS(t *testing.T) {
	buf := pipes.NewBuffer("b", 4)
	if buf.Closed() {
		t.Fatal("fresh buffer closed")
	}
	buf.CloseUpstream()
	if !buf.Closed() {
		t.Fatal("CloseUpstream did not mark closed")
	}
}

// ------------------------------------------------------------------ pumps

func TestClockedPumpHoldsRate(t *testing.T) {
	s := uthread.New()
	sink := pipes.NewCollectSink("sink")
	p, err := core.Compose("rate", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 100)),
		core.Pmp(pipes.NewClockedPump("pump", 50)),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := s.Now().Sub(start).Seconds()
	// 100 items at 50 Hz = 2.0 s of virtual time (first fires immediately).
	if elapsed < 1.9 || elapsed > 2.1 {
		t.Fatalf("elapsed %.3fs, want ~2.0s", elapsed)
	}
}

func TestPumpRateChangeViaEvent(t *testing.T) {
	pump := pipes.NewAdaptivePump("pump", 10)
	pump.HandleEvent(events.Event{Type: events.RateChange, Data: 80.0})
	if got := pump.Rate(); got != 80 {
		t.Fatalf("rate = %g after event", got)
	}
	// Non-rate events and bad payloads are ignored.
	pump.HandleEvent(events.Event{Type: events.Resize, Data: 1.0})
	pump.HandleEvent(events.Event{Type: events.RateChange, Data: "bogus"})
	pump.HandleEvent(events.Event{Type: events.RateChange, Data: -5.0})
	if got := pump.Rate(); got != 80 {
		t.Fatalf("rate = %g, want unchanged 80", got)
	}
}

func TestFreePumpClassAndRate(t *testing.T) {
	pump := pipes.NewFreePump("f")
	if pump.Class() != core.FreeRunning {
		t.Error("class wrong")
	}
	if pump.Rate() != 0 {
		t.Error("free pump must report unlimited rate")
	}
	now := vclock.Epoch
	if got := pump.Next(now, 0); got.After(now) {
		t.Error("free pump must fire immediately")
	}
}

func TestClockedPumpCatchesUpWithoutDrift(t *testing.T) {
	pump := pipes.NewClockedPump("c", 10) // 100ms period
	t0 := vclock.Epoch
	d0 := pump.Next(t0, 0)
	d1 := pump.Next(t0.Add(250*time.Millisecond), 1) // we're late
	d2 := pump.Next(t0.Add(250*time.Millisecond), 2)
	if !d0.Equal(t0) {
		t.Errorf("first deadline %v, want anchor", d0)
	}
	if !d1.Equal(t0.Add(100 * time.Millisecond)) {
		t.Errorf("second deadline %v, want anchor+100ms (catch-up)", d1)
	}
	if !d2.Equal(t0.Add(200 * time.Millisecond)) {
		t.Errorf("third deadline %v, want anchor+200ms", d2)
	}
}

func TestPumpPriorities(t *testing.T) {
	p := pipes.NewClockedPumpPrio("audio", 100, uthread.PriorityHigh)
	if p.Priority() != uthread.PriorityHigh {
		t.Fatal("priority not applied")
	}
}

// ------------------------------------------------------------- components

func TestCountingProbe(t *testing.T) {
	probe := pipes.NewCountingProbe("probe")
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 10)),
		core.Comp(probe),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(pipes.NullSink("sink")),
	})
	if probe.Items() != 10 {
		t.Errorf("Items = %d", probe.Items())
	}
	if probe.Bytes() != 80 { // counter items are 8 bytes
		t.Errorf("Bytes = %d", probe.Bytes())
	}
}

func TestDelayFilterAdvancesVirtualTime(t *testing.T) {
	s := uthread.New()
	delay := pipes.NewDelayFilter("delay", func(*item.Item) int64 { return 5_000_000 }) // 5ms
	p, err := core.Compose("d", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 10)),
		core.Comp(delay),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(pipes.NullSink("sink")),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Now().Sub(start); got < 50*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 50ms", got)
	}
}

func TestGeneratorSourceProducedCount(t *testing.T) {
	src := pipes.NewCounterSource("src", 7)
	run(t, []core.Stage{
		core.Comp(src),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(pipes.NullSink("sink")),
	})
	if src.Produced() != 7 {
		t.Errorf("Produced = %d", src.Produced())
	}
}

func TestCollectSinkLatencyStats(t *testing.T) {
	sink := pipes.NewCollectSink("sink")
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 20)),
		core.Pmp(pipes.NewClockedPump("pump", 100)),
		core.Comp(sink),
	})
	if sink.Latency().Count() != 20 {
		t.Errorf("latency samples = %d", sink.Latency().Count())
	}
	if sink.ArrivalJitter() > 0.0001 {
		t.Errorf("clocked arrivals should have ~0 jitter, got %g", sink.ArrivalJitter())
	}
}

func TestFuncSinkErrorFailsPipeline(t *testing.T) {
	boom := errors.New("sink failure")
	s := uthread.New()
	p, err := core.Compose("f", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 5)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(pipes.NewFuncSink("sink", func(*core.Ctx, *item.Item) error { return boom })),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Err(); !errors.Is(got, boom) {
		t.Fatalf("pipeline error = %v", got)
	}
}

// ----------------------------------------------------- defrag / frag units

func TestDefragAndFragAllStyleCombinations(t *testing.T) {
	// Every (defrag style) x (frag style) combination must reproduce the
	// original stream: the strongest form of the E3 equivalence.
	defrags := map[string]func() core.Component{
		"consumer": func() core.Component { return pipes.NewDefragConsumer("df", nil) },
		"producer": func() core.Component { return pipes.NewDefragProducer("df", nil) },
		"active":   func() core.Component { return pipes.NewDefragActive("df", nil) },
	}
	frags := map[string]func() core.Component{
		"consumer": func() core.Component { return pipes.NewFragConsumer("fr", nil) },
		"producer": func() core.Component { return pipes.NewFragProducer("fr", nil) },
		"active":   func() core.Component { return pipes.NewFragActive("fr", nil) },
	}
	const n = 16
	for dn, dmk := range defrags {
		for fn, fmk := range frags {
			t.Run(dn+"+"+fn, func(t *testing.T) {
				sink := pipes.NewCollectSink("sink")
				run(t, []core.Stage{
					core.Comp(pipes.NewCounterSource("src", n)),
					core.Comp(dmk()),
					core.Pmp(pipes.NewFreePump("pump")),
					core.Comp(fmk()),
					core.Comp(sink),
				})
				items := sink.Items()
				if len(items) != n {
					t.Fatalf("got %d items, want %d", len(items), n)
				}
				for i, it := range items {
					if got := it.Payload.(int64); got != int64(i+1) {
						t.Fatalf("item %d = %d, want %d", i, got, i+1)
					}
				}
			})
		}
	}
}

func TestPairAssembleAndFragmentInverse(t *testing.T) {
	a := item.New(int64(1), 1, vclock.Epoch).WithSize(10)
	b := item.New(int64(2), 2, vclock.Epoch.Add(time.Second)).WithSize(20)
	merged := pipes.PairAssemble(a, b)
	if merged.Size != 30 {
		t.Errorf("merged size = %d", merged.Size)
	}
	if !merged.Created.Equal(vclock.Epoch) {
		t.Errorf("merged timestamp must be the earlier part's")
	}
	parts := pipes.PairFragment(merged)
	if len(parts) != 2 {
		t.Fatalf("fragment produced %d parts", len(parts))
	}
	if parts[0].Payload.(int64) != 1 || parts[1].Payload.(int64) != 2 {
		t.Error("order lost in round trip")
	}
	if parts[0].Size+parts[1].Size != 30 {
		t.Error("sizes lost in round trip")
	}
	// Non-pair payloads pass through unharmed.
	odd := item.New("x", 9, vclock.Epoch)
	if got := pipes.PairFragment(odd); len(got) != 1 || got[0] != odd {
		t.Error("non-pair payload mangled")
	}
}

// ------------------------------------------------------------------- tees

func TestRouteTeeSelectsOutputs(t *testing.T) {
	s := uthread.New()
	tee := pipes.NewRouteTee("route", 2, 16, typespec.Block, typespec.Block,
		func(it *item.Item) int { return int(it.Seq % 2) })
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 10)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	sinks := [2]*pipes.CollectSink{pipes.NewCollectSink("s0"), pipes.NewCollectSink("s1")}
	for i := 0; i < 2; i++ {
		if _, err := core.Compose("branch", s, trunk.Bus(), []core.Stage{
			core.Comp(tee.Out(i)),
			core.Pmp(pipes.NewFreePump("bp")),
			core.Comp(sinks[i]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Even seqs to output 0, odd to output 1.
	if sinks[0].Count() != 5 || sinks[1].Count() != 5 {
		t.Fatalf("split %d/%d, want 5/5", sinks[0].Count(), sinks[1].Count())
	}
	for _, it := range sinks[0].Items() {
		if it.Seq%2 != 0 {
			t.Errorf("odd seq %d on even output", it.Seq)
		}
	}
}

func TestRouteTeeOutOfRangeDrops(t *testing.T) {
	s := uthread.New()
	tee := pipes.NewRouteTee("route", 1, 4, typespec.Block, typespec.Block,
		func(it *item.Item) int { return 5 }) // always out of range
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 3)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := pipes.NewCollectSink("sink")
	if _, err := core.Compose("branch", s, trunk.Bus(), []core.Stage{
		core.Comp(tee.Out(0)),
		core.Pmp(pipes.NewFreePump("bp")),
		core.Comp(sink),
	}); err != nil {
		t.Fatal(err)
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 0 {
		t.Fatalf("out-of-range routed items reached a sink: %d", sink.Count())
	}
}

func TestCopyTeeClonesItems(t *testing.T) {
	// Mutating attributes on one branch must not affect the other.
	s := uthread.New()
	tee := pipes.NewCopyTee("tee", 2, 8, typespec.Block, typespec.Block)
	trunk, err := core.Compose("trunk", s, nil, []core.Stage{
		core.Comp(pipes.NewGeneratorSource("src", typespec.Typespec{}, 5,
			func(ctx *core.Ctx, seq int64) (*item.Item, error) {
				return item.New(seq, seq, ctx.Now()).WithAttr("tag", "orig"), nil
			})),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(tee),
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate := pipes.NewFuncFilter("mutate", func(_ *core.Ctx, it *item.Item) (*item.Item, error) {
		it.SetAttr("tag", "mutated")
		return it, nil
	})
	sink0 := pipes.NewCollectSink("s0")
	sink1 := pipes.NewCollectSink("s1")
	if _, err := core.Compose("b0", s, trunk.Bus(), []core.Stage{
		core.Comp(tee.Out(0)), core.Comp(mutate),
		core.Pmp(pipes.NewFreePump("p0")), core.Comp(sink0),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compose("b1", s, trunk.Bus(), []core.Stage{
		core.Comp(tee.Out(1)),
		core.Pmp(pipes.NewFreePump("p1")), core.Comp(sink1),
	}); err != nil {
		t.Fatal(err)
	}
	trunk.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, it := range sink1.Items() {
		if it.AttrString("tag") != "orig" {
			t.Fatalf("branch 1 saw mutated attr %q (tee must clone)", it.AttrString("tag"))
		}
	}
	if sink0.Count() != 5 || sink1.Count() != 5 {
		t.Fatalf("counts %d/%d", sink0.Count(), sink1.Count())
	}
}

func TestNullSinkDiscards(t *testing.T) {
	run(t, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 3)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(pipes.NullSink("sink")),
	})
}

func TestFuncFilterSpecBuilders(t *testing.T) {
	f := pipes.NewFuncFilter("f", func(_ *core.Ctx, it *item.Item) (*item.Item, error) { return it, nil }).
		WithInputSpec(typespec.New("video/raw")).
		WithTransform(func(ts typespec.Typespec) typespec.Typespec { return ts.WithLocation("x") })
	if f.InputSpec().ItemType != "video/raw" {
		t.Error("input spec lost")
	}
	if got := f.TransformSpec(typespec.New("video/raw")); got.Location != "x" {
		t.Error("transform lost")
	}
}
