// Package pipes provides the standard Infopipe components of §2.1: pumps,
// buffers, filters, transformers, the paper's defragmenter/fragmenter
// running example in every activity style, tees, sources and sinks.
// Application developers combine these with their own flow-specific
// components.
package pipes

import (
	"sync"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/uthread"
)

// TimedPump implements the pump families of §3.1.  It hides all thread
// creation and scheduler interaction: the programmer chooses the timing
// policy by choosing the pump and setting its rate.
type TimedPump struct {
	name  string
	class core.PumpClass
	prio  uthread.Priority

	mu     sync.Mutex
	period time.Duration
	nextAt time.Time
}

var _ core.Pump = (*TimedPump)(nil)

// NewClockedPump returns a clock-driven pump running at rate cycles per
// second (§3.1: "clock driven pumps typically operate at a constant rate").
// A rate of 30 gives the 30 Hz video pump of the paper's player example.
func NewClockedPump(name string, rate float64) *TimedPump {
	return &TimedPump{name: name, class: core.ClockDriven, prio: uthread.PriorityNormal, period: periodOf(rate)}
}

// NewClockedPumpPrio is NewClockedPump with an explicit scheduling priority
// for time-critical sections (§3.2: audio outranks video decoding).
func NewClockedPumpPrio(name string, rate float64, prio uthread.Priority) *TimedPump {
	return &TimedPump{name: name, class: core.ClockDriven, prio: prio, period: periodOf(rate)}
}

// NewFreePump returns a free-running pump: it "does not limit its rate at
// all and relies on buffers to block the thread when a buffer is full or
// empty" (§3.1).
func NewFreePump(name string) *TimedPump {
	return &TimedPump{name: name, class: core.FreeRunning, prio: uthread.PriorityNormal}
}

// NewFreePumpPrio is NewFreePump with an explicit scheduling priority, used
// by graph lane relays so a tenant's priority survives the hop instead of
// being flattened to normal by a pass-through pump.
func NewFreePumpPrio(name string, prio uthread.Priority) *TimedPump {
	return &TimedPump{name: name, class: core.FreeRunning, prio: prio}
}

// NewAdaptivePump returns a pump whose rate is adjusted at run time by
// feedback (rate-change control events), the §3.1 class used on the
// producer node of distributed pipelines to compensate drift and network
// variation.
func NewAdaptivePump(name string, initialRate float64) *TimedPump {
	return &TimedPump{name: name, class: core.Adaptive, prio: uthread.PriorityNormal, period: periodOf(initialRate)}
}

func periodOf(rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / rate)
}

// Name implements core.Pump.
func (p *TimedPump) Name() string { return p.name }

// Class implements core.Pump.
func (p *TimedPump) Class() core.PumpClass { return p.class }

// Priority implements core.Pump.
func (p *TimedPump) Priority() uthread.Priority { return p.prio }

// Next implements core.Pump: deadlines advance by one period per cycle from
// the first observation, so a delayed cycle is followed by catch-up rather
// than drift.  The engine calls Next once per cycle.
func (p *TimedPump) Next(now time.Time, cycle int64) time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.period == 0 {
		return now // free-running
	}
	if p.nextAt.IsZero() {
		p.nextAt = now
	}
	deadline := p.nextAt
	p.nextAt = deadline.Add(p.period)
	return deadline
}

// SetRate changes the pump rate (cycles per second).  Safe from any thread;
// feedback actuators and rate-change events use it.
func (p *TimedPump) SetRate(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.period = periodOf(rate)
	p.nextAt = time.Time{} // re-anchor at the next cycle
}

// Rate reports the current rate in cycles per second (0 = unlimited).
func (p *TimedPump) Rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.period == 0 {
		return 0
	}
	return float64(time.Second) / float64(p.period)
}

// HandleEvent implements core.Pump: rate-change events carry the new rate
// in events per second as a float64.
func (p *TimedPump) HandleEvent(ev events.Event) {
	if ev.Type != events.RateChange {
		return
	}
	if rate, ok := ev.Data.(float64); ok && rate > 0 {
		p.SetRate(rate)
	}
}
