package pipes_test

import (
	"runtime"
	"testing"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/pipes"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// mallocsOf runs f and reports the process-wide malloc count it caused.
func mallocsOf(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestPipelineHotPathAllocSteadyState is the end-to-end guard for the pump
// telemetry (PipeStats counters): a pooled counter stream through a free
// pump and a recycling sink must allocate nothing per item in steady state
// — the counters are plain atomics and the sampled busy-time reads are
// stack-only.  Measured as the per-item slope between two run lengths, so
// the constant composition/thread-spawn cost cancels out.
func TestPipelineHotPathAllocSteadyState(t *testing.T) {
	run := func(items int64) uint64 {
		sched := uthread.New()
		sink := pipes.NewFuncSink("sink", func(_ *core.Ctx, it *item.Item) error {
			it.Recycle()
			return nil
		})
		// nil payload: a boxed int64 payload would cost its own allocation
		// per item and mask what this guard measures.
		src := pipes.NewGeneratorSource("src", typespec.New("test/null"), items,
			func(ctx *core.Ctx, seq int64) (*item.Item, error) {
				return item.New(nil, seq, ctx.Now()), nil
			})
		p, err := core.Compose("alloc", sched, nil, []core.Stage{
			core.Comp(src),
			core.Pmp(pipes.NewFreePump("pump")),
			core.Comp(sink),
		})
		if err != nil {
			t.Fatal(err)
		}
		mallocs := mallocsOf(func() {
			p.Start()
			if err := sched.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if st := p.Stats(); st.Items != items {
			t.Fatalf("pipeline counted %d items, want %d", st.Items, items)
		}
		return mallocs
	}
	run(1_000) // warm the item pool and runtime
	short, long := run(2_000), run(22_000)
	perItem := float64(int64(long)-int64(short)) / 20_000
	if perItem > 0.1 {
		t.Fatalf("hot path allocates %.4f objects per item (pump counters must add zero)", perItem)
	}
}
