package pipes

import (
	"fmt"
	"sync"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

func nsToDuration(ns int64) time.Duration { return time.Duration(ns) }

// This file implements the multi-port components of §2.1/§3.3: tees for
// splitting and merging information flows.  Multi-port components bridge
// several linear pipelines.  Following the paper's rule that only one
// passive port is allowed in a non-buffering component, the splitting tees
// here buffer internally: the tee is the sink of its trunk pipeline, and
// each output is a passive source feeding a branch pipeline.

// CopyTee is the multicast splitter: every incoming item is copied to each
// output (§2.1 "copying items to each output (multicast)").
//
// Ports can be added and detached at runtime (AddOut/DetachOut) — the live
// graph-edit surface.  Both mutate the port table without a lock, so they
// are only safe while every pipeline touching the tee is quiesced (detached
// at a pump-cycle boundary with its threads joined); Deployment.Edit
// provides exactly that window.
type CopyTee struct {
	core.Base
	outs     []*BoundedBuffer
	detached []bool
	lastLive int  // highest attached port: gets the original, not a clone
	ended    bool // trunk EOS seen: late-attached ports close immediately
	capacity int
	push     typespec.BlockPolicy
	pull     typespec.BlockPolicy
}

var (
	_ core.Consumer = (*CopyTee)(nil)
	_ core.EOSSink  = (*CopyTee)(nil)
)

// NewCopyTee builds a splitter with n outputs backed by buffers of the
// given capacity and blocking policies.
func NewCopyTee(name string, n, capacity int, push, pull typespec.BlockPolicy) *CopyTee {
	t := &CopyTee{Base: core.Base{CompName: name}, capacity: capacity, push: push, pull: pull}
	for i := 0; i < n; i++ {
		t.outs = append(t.outs, NewBufferPolicy(fmt.Sprintf("%s.out%d", name, i), capacity, push, pull))
	}
	t.detached = make([]bool, n)
	t.lastLive = n - 1
	return t
}

// AddOut grows the tee by one output port and returns its index.  If the
// trunk has already ended, the new port is born closed so a late-attached
// branch drains straight to a clean end of stream.  Quiesce-only: see the
// type comment.
func (t *CopyTee) AddOut() int {
	i := len(t.outs)
	b := NewBufferPolicy(fmt.Sprintf("%s.out%d", t.Name(), i), t.capacity, t.push, t.pull)
	t.outs = append(t.outs, b)
	t.detached = append(t.detached, false)
	t.lastLive = i
	if t.ended {
		b.CloseUpstream()
	}
	return i
}

// DetachOut tombstones port i: the trunk stops feeding it and its buffer is
// closed upstream, so the leaving branch drains what it holds and then sees
// a clean end of stream.  Ports are never renumbered; the last attached port
// cannot be detached.  Quiesce-only: see the type comment.
func (t *CopyTee) DetachOut(i int) error {
	if i < 0 || i >= len(t.outs) {
		return fmt.Errorf("%s: no out-port %d", t.Name(), i)
	}
	if t.detached[i] {
		return fmt.Errorf("%s: out-port %d already detached", t.Name(), i)
	}
	live := 0
	for j := range t.outs {
		if !t.detached[j] {
			live++
		}
	}
	if live == 1 {
		return fmt.Errorf("%s: cannot detach the last attached out-port", t.Name())
	}
	t.detached[i] = true
	t.lastLive = -1
	for j := range t.outs {
		if !t.detached[j] {
			t.lastLive = j
		}
	}
	t.outs[i].CloseUpstream()
	return nil
}

// BindScheduler forwards the scheduler binding to the internal buffers.
func (t *CopyTee) BindScheduler(s *uthread.Scheduler) {
	for _, b := range t.outs {
		b.BindScheduler(s)
	}
}

// Style implements core.Component.
func (t *CopyTee) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer: clones the item into every output buffer.
// Clones share the attribute map copy-on-write, and the original travels on
// to the last branch, so an n-way fan-out costs n-1 pooled item headers and
// no map copies.
func (t *CopyTee) Push(ctx *core.Ctx, it *item.Item) error {
	for i, b := range t.outs {
		if t.detached[i] {
			continue
		}
		out := it
		if i != t.lastLive {
			out = it.Clone()
		}
		if err := b.Insert(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

// HandleEOS implements core.EOSSink: end of the trunk stream closes every
// attached branch buffer, so branch pipelines drain and end too.  Detached
// ports were already closed when they left.
func (t *CopyTee) HandleEOS(*core.Ctx) {
	t.ended = true
	for i, b := range t.outs {
		if t.detached[i] {
			continue
		}
		b.CloseUpstream()
	}
}

// HandleEvent implements core.Component: a stop event also releases the
// branches, since the trunk will produce nothing further.
func (t *CopyTee) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		t.HandleEOS(nil)
	}
}

// Out returns the i-th output as a passive source component for a branch
// pipeline.
func (t *CopyTee) Out(i int) *BufferSource {
	return NewBufferSource(fmt.Sprintf("%s.src%d", t.Name(), i), t.outs[i])
}

// OutBuffer exposes the i-th internal buffer (fill-level sensors).
func (t *CopyTee) OutBuffer(i int) *BoundedBuffer { return t.outs[i] }

// Outs implements core.SplitPoint.
func (t *CopyTee) Outs() int { return len(t.outs) }

// OutPort implements core.SplitPoint.
func (t *CopyTee) OutPort(i int) core.Component { return t.Out(i) }

// RouteTee is the routing splitter: each item is sent to the output chosen
// by the selector (§2.1 "selecting an output for each item (routing)").
// Per §3.3 the value-routing switch can only work in push style — this type
// is a consumer and the planner will never drive it by pull without glue.
// Like CopyTee, ports can be added and detached at runtime (AddOut /
// DetachOut) under the same quiesce-only contract.  Note that an existing
// selector keeps choosing among whatever range it was written for: items it
// routes to a detached port count as misses, and a freshly attached port
// only receives traffic if the selector already targets its index.
type RouteTee struct {
	core.Base
	selector func(it *item.Item) int
	outs     []*BoundedBuffer
	detached []bool
	ended    bool
	capacity int
	push     typespec.BlockPolicy
	pull     typespec.BlockPolicy
	misses   int64
}

var (
	_ core.Consumer = (*RouteTee)(nil)
	_ core.EOSSink  = (*RouteTee)(nil)
)

// NewRouteTee builds a routing splitter; selector returns the output index
// for each item (out-of-range selections are dropped).
func NewRouteTee(name string, n, capacity int, push, pull typespec.BlockPolicy,
	selector func(it *item.Item) int) *RouteTee {
	t := &RouteTee{Base: core.Base{CompName: name}, selector: selector,
		capacity: capacity, push: push, pull: pull}
	for i := 0; i < n; i++ {
		t.outs = append(t.outs, NewBufferPolicy(fmt.Sprintf("%s.out%d", name, i), capacity, push, pull))
	}
	t.detached = make([]bool, n)
	return t
}

// AddOut grows the tee by one output port and returns its index.  Born
// closed if the trunk already ended.  Quiesce-only: see the type comment.
func (t *RouteTee) AddOut() int {
	i := len(t.outs)
	b := NewBufferPolicy(fmt.Sprintf("%s.out%d", t.Name(), i), t.capacity, t.push, t.pull)
	t.outs = append(t.outs, b)
	t.detached = append(t.detached, false)
	if t.ended {
		b.CloseUpstream()
	}
	return i
}

// DetachOut tombstones port i; the leaving branch drains its buffer and then
// sees a clean end of stream.  Quiesce-only: see the type comment.
func (t *RouteTee) DetachOut(i int) error {
	if i < 0 || i >= len(t.outs) {
		return fmt.Errorf("%s: no out-port %d", t.Name(), i)
	}
	if t.detached[i] {
		return fmt.Errorf("%s: out-port %d already detached", t.Name(), i)
	}
	live := 0
	for j := range t.outs {
		if !t.detached[j] {
			live++
		}
	}
	if live == 1 {
		return fmt.Errorf("%s: cannot detach the last attached out-port", t.Name())
	}
	t.detached[i] = true
	t.outs[i].CloseUpstream()
	return nil
}

// BindScheduler forwards the scheduler binding to the internal buffers.
func (t *RouteTee) BindScheduler(s *uthread.Scheduler) {
	for _, b := range t.outs {
		b.BindScheduler(s)
	}
}

// Style implements core.Component.
func (t *RouteTee) Style() core.Style { return core.StyleConsumer }

// Wrappable implements core.Component: the value-routing switch cannot be
// glued into pull mode — "this component could not work in push-style"
// holds dually here: a pull-driven value switch would need unbounded
// implicit buffering (§3.3), so the middleware refuses to wrap it.
func (t *RouteTee) Wrappable() bool { return false }

// Push implements core.Consumer.
func (t *RouteTee) Push(ctx *core.Ctx, it *item.Item) error {
	i := t.selector(it)
	if i < 0 || i >= len(t.outs) || t.detached[i] {
		t.misses++
		return nil
	}
	return t.outs[i].Insert(ctx, it)
}

// HandleEOS implements core.EOSSink.
func (t *RouteTee) HandleEOS(*core.Ctx) {
	t.ended = true
	for i, b := range t.outs {
		if t.detached[i] {
			continue
		}
		b.CloseUpstream()
	}
}

// HandleEvent implements core.Component.
func (t *RouteTee) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		t.HandleEOS(nil)
	}
}

// Out returns the i-th output as a passive source for a branch pipeline.
func (t *RouteTee) Out(i int) *BufferSource {
	return NewBufferSource(fmt.Sprintf("%s.src%d", t.Name(), i), t.outs[i])
}

// OutBuffer exposes the i-th internal buffer.
func (t *RouteTee) OutBuffer(i int) *BoundedBuffer { return t.outs[i] }

// Outs implements core.SplitPoint.
func (t *RouteTee) Outs() int { return len(t.outs) }

// OutPort implements core.SplitPoint.
func (t *RouteTee) OutPort(i int) core.Component { return t.Out(i) }

// MergeTee passes items from several inputs to one output in arrival order
// (§2.1 "pass on information to the output in the order in which it
// arrives at any input").  Each input is the sink of a trunk pipeline; the
// single output is a passive source for the downstream pipeline.
type MergeTee struct {
	core.Base
	out *BoundedBuffer
	ins int

	mu      sync.Mutex
	open    int
	inEnded []bool // per-port EOS latch: ending one input twice is a no-op
}

// NewMergeTee builds a merger for n inputs with an internal buffer of the
// given capacity.
func NewMergeTee(name string, n, capacity int, push, pull typespec.BlockPolicy) *MergeTee {
	return &MergeTee{
		Base:    core.Base{CompName: name},
		out:     NewBufferPolicy(name+".out", capacity, push, pull),
		ins:     n,
		open:    n,
		inEnded: make([]bool, n),
	}
}

// BindScheduler forwards the scheduler binding to the internal buffer.
func (t *MergeTee) BindScheduler(s *uthread.Scheduler) { t.out.BindScheduler(s) }

// In returns the i-th input as a sink component for a trunk pipeline.
func (t *MergeTee) In(i int) *MergeIn {
	return &MergeIn{Base: core.Base{CompName: fmt.Sprintf("%s.in%d", t.Name(), i)}, tee: t, idx: i}
}

// Out returns the merged output as a passive source for the downstream
// pipeline.
func (t *MergeTee) Out() *BufferSource { return NewBufferSource(t.Name()+".src", t.out) }

// OutBuffer exposes the internal buffer.
func (t *MergeTee) OutBuffer() *BoundedBuffer { return t.out }

// Ins implements core.MergePoint.
func (t *MergeTee) Ins() int { return t.ins }

// InPort implements core.MergePoint.
func (t *MergeTee) InPort(i int) core.Component { return t.In(i) }

// OutPort implements core.MergePoint.
func (t *MergeTee) OutPort() core.Component { return t.Out() }

// inputDone records the end of trunk i; the merged stream ends when all
// trunks have ended.  Idempotent per port: a recomposed inbound pipeline
// (pipeline migration) re-propagating an already-seen end of stream must
// not end a second input.
func (t *MergeTee) inputDone(i int) {
	t.mu.Lock()
	if i < 0 || i >= len(t.inEnded) || t.inEnded[i] {
		t.mu.Unlock()
		return
	}
	t.inEnded[i] = true
	t.open--
	closeNow := t.open == 0
	t.mu.Unlock()
	if closeNow {
		t.out.CloseUpstream()
	}
}

// MergeIn is one input port of a MergeTee, used as a trunk pipeline's sink.
type MergeIn struct {
	core.Base
	tee *MergeTee
	idx int
}

var (
	_ core.Consumer = (*MergeIn)(nil)
	_ core.EOSSink  = (*MergeIn)(nil)
)

// Style implements core.Component.
func (m *MergeIn) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer.  The in-port stamps the item's provenance
// before it joins the merged flow: (Origin, Seq) stays unique and monotone
// per origin downstream of the merge, so durable lanes below it can still
// journal, acknowledge and deduplicate (the merged flow itself interleaves
// the branches' sequence numbers).
func (m *MergeIn) Push(ctx *core.Ctx, it *item.Item) error {
	it.Origin = it.Origin*int64(m.tee.ins+1) + int64(m.idx+1)
	return m.tee.out.Insert(ctx, it)
}

// HandleEOS implements core.EOSSink.
func (m *MergeIn) HandleEOS(*core.Ctx) { m.tee.inputDone(m.idx) }

// HandleEvent implements core.Component.
func (m *MergeIn) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		m.tee.inputDone(m.idx)
	}
}

// BufferSource adapts a BoundedBuffer's passive pull end into a
// producer-style source component, used to start branch pipelines at tee
// outputs and netpipe receivers.
type BufferSource struct {
	core.Base
	buf *BoundedBuffer
}

var _ core.Producer = (*BufferSource)(nil)

// NewBufferSource wraps buf as a source.
func NewBufferSource(name string, buf *BoundedBuffer) *BufferSource {
	return &BufferSource{Base: core.Base{CompName: name}, buf: buf}
}

// BindScheduler forwards the scheduler binding to the buffer.
func (s *BufferSource) BindScheduler(sch *uthread.Scheduler) { s.buf.BindScheduler(sch) }

// Style implements core.Component.
func (s *BufferSource) Style() core.Style { return core.StyleProducer }

// Pull implements core.Producer.
func (s *BufferSource) Pull(ctx *core.Ctx) (*item.Item, error) { return s.buf.Remove(ctx) }

// Buffer exposes the backing buffer.
func (s *BufferSource) Buffer() *BoundedBuffer { return s.buf }

// PullSwitch is the activity-routing switch of §3.3: a pull on either
// out-port triggers an upstream pull and returns the item to the caller.
// Both out-ports are passive and the in-port is active; "this component
// could not work in push-style".  The upstream is a shared passive pull
// function (typically a buffer or a passive source chain).
//
// Mutual exclusion between the out-ports comes from the user-level thread
// model itself: all callers are threads of one scheduler and only one runs
// at a time, so the upstream pull is never entered concurrently.  A lock
// held across the (possibly blocking) upstream call would stall the whole
// scheduler and must not be added.
type PullSwitch struct {
	name     string
	upstream func(ctx *core.Ctx) (*item.Item, error)
}

// NewPullSwitch builds an activity-routing switch over the given upstream.
func NewPullSwitch(name string, upstream func(ctx *core.Ctx) (*item.Item, error)) *PullSwitch {
	return &PullSwitch{name: name, upstream: upstream}
}

// Out returns the i-th passive out-port as a source component.
func (s *PullSwitch) Out(i int) *PullSwitchOut {
	return &PullSwitchOut{Base: core.Base{CompName: fmt.Sprintf("%s.out%d", s.name, i)}, sw: s}
}

// pull forwards one upstream pull.
func (s *PullSwitch) pull(ctx *core.Ctx) (*item.Item, error) {
	return s.upstream(ctx)
}

// PullSwitchOut is one passive out-port of a PullSwitch.
type PullSwitchOut struct {
	core.Base
	sw *PullSwitch
}

var _ core.Producer = (*PullSwitchOut)(nil)

// Style implements core.Component.
func (o *PullSwitchOut) Style() core.Style { return core.StyleProducer }

// Wrappable implements core.Component: the out-ports must stay passive.
func (o *PullSwitchOut) Wrappable() bool { return false }

// Pull implements core.Producer.
func (o *PullSwitchOut) Pull(ctx *core.Ctx) (*item.Item, error) { return o.sw.pull(ctx) }

// The tees implement the graph planner's split/merge interfaces.
var (
	_ core.SplitPoint = (*CopyTee)(nil)
	_ core.SplitPoint = (*RouteTee)(nil)
	_ core.MergePoint = (*MergeTee)(nil)
)
