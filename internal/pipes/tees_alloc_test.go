package pipes_test

import (
	"testing"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/pipes"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// TestCopyTeeFanOutDoesNotAllocate is the regression guard for the pooled
// item freelist and copy-on-write attrs: multicasting a nil-attrs item
// through a CopyTee must not allocate per fan-out — the clone header comes
// from the freelist and there is no attribute map to copy.  The measurement
// runs on a scheduler thread because buffer operations need a live Ctx.
func TestCopyTeeFanOutDoesNotAllocate(t *testing.T) {
	s := uthread.New()
	tee := pipes.NewCopyTee("tee", 2, 64, typespec.Block, typespec.Block)
	tee.BindScheduler(s)
	var perFanOut float64
	measured := false
	sink := pipes.NewFuncSink("measure", func(ctx *core.Ctx, it *item.Item) error {
		if measured {
			it.Recycle()
			return nil
		}
		measured = true
		it.Recycle()
		perFanOut = testing.AllocsPerRun(500, func() {
			in := item.New(int64(7), 7, ctx.Now())
			if err := tee.Push(ctx, in); err != nil {
				t.Error(err)
			}
			for i := 0; i < 2; i++ {
				out, err := tee.OutBuffer(i).Remove(ctx)
				if err != nil {
					t.Error(err)
				}
				out.Recycle()
			}
		})
		return nil
	})
	p, err := core.Compose("alloc-probe", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 1)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !measured {
		t.Fatal("measurement never ran")
	}
	if perFanOut >= 1 {
		t.Errorf("CopyTee fan-out allocates %v/op for nil-attrs items, want 0", perFanOut)
	}
}

// TestCopyTeeSharedAttrsStayIsolated pins the copy-on-write contract at the
// tee level: branches see the attribute values present at multicast time,
// and a branch mutating through SetAttr never leaks into a sibling.
func TestCopyTeeSharedAttrsStayIsolated(t *testing.T) {
	s := uthread.New()
	tee := pipes.NewCopyTee("tee", 2, 8, typespec.Block, typespec.Block)
	tee.BindScheduler(s)
	var got [2]string
	sink := pipes.NewFuncSink("drive", func(ctx *core.Ctx, it *item.Item) error {
		in := item.New("payload", 1, ctx.Now()).WithAttr("tag", "orig")
		if err := tee.Push(ctx, in); err != nil {
			return err
		}
		a, err := tee.OutBuffer(0).Remove(ctx)
		if err != nil {
			return err
		}
		b, err := tee.OutBuffer(1).Remove(ctx)
		if err != nil {
			return err
		}
		a.SetAttr("tag", "branch0")
		got[0] = a.AttrString("tag")
		got[1] = b.AttrString("tag")
		it.Recycle()
		return nil
	})
	p, err := core.Compose("cow-probe", s, nil, []core.Stage{
		core.Comp(pipes.NewCounterSource("src", 1)),
		core.Pmp(pipes.NewFreePump("pump")),
		core.Comp(sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "branch0" || got[1] != "orig" {
		t.Errorf("branch attrs = %q, %q; want branch0, orig", got[0], got[1])
	}
}
