package qos

import (
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
)

// Admission is the admission-control component: a conversion function the
// graph deployer inserts directly after a deployment's true sources, so
// overload is shed or blocked BEFORE the first queue — counters instead of
// queue growth, bounded memory instead of OOM.
//
// The limiter is a GCRA token bucket (theoretical-arrival-time form: one
// time.Time of state, no token counter to decay) driven by the pipeline's
// virtual clock, so admission decisions are deterministic and reproducible
// across runs and shard counts.  Each Admission instance carries its own
// bucket: the tenant's rate bounds each source independently, keeping
// per-shard state local and the trace independent of sibling shards.
type Admission struct {
	core.Base
	tenant   *Tenant
	gen      uint64        // tenant rate generation the cache below was built from
	interval time.Duration // virtual time per admitted item; 0 = unlimited
	tol      time.Duration // burst tolerance: interval * (burst-1)
	tat      time.Time     // theoretical arrival time (bucket state)
}

var _ core.Function = (*Admission)(nil)

// NewAdmission creates an admission gate for the tenant.  A tenant without a
// rate limit yields a pass-through that still counts admitted items (the
// per-tenant items rollup reads it).
func NewAdmission(name string, tenant *Tenant) *Admission {
	a := &Admission{Base: core.Base{CompName: name}, tenant: tenant}
	a.reload(tenant.RateGen())
	return a
}

// reload recomputes the cached bucket parameters from the tenant's current
// rate/burst.  The GCRA state (tat) is kept: the theoretical arrival time
// converges under the new interval within one burst window, so a live rate
// change neither forgives past over-rate traffic nor punishes conforming
// flows.
func (a *Admission) reload(gen uint64) {
	a.gen = gen
	a.interval, a.tol = 0, 0
	if rate := a.tenant.Rate(); rate > 0 {
		a.interval = time.Duration(float64(time.Second) / rate)
		a.tol = a.interval * time.Duration(a.tenant.Burst()-1)
	}
}

// AdmissionIndex returns the stage index after which a deployment inserts
// an admission gate into a true-source segment.  The gate must run in PUSH
// mode: a pull-mode conversion that filters an item is immediately re-pulled
// at the same (virtual) instant, so a drop-shedding gate upstream of the
// pump would drain the whole source inside one pump cycle instead of
// shedding at the pump's pace.  Downstream of the pump, one pump cycle is
// one admission offer — drop discards that cycle's item, block backpressures
// the pump thread — and on the virtual clock the decision sequence is a pure
// function of the tick times.
//
// The index is the first pump stage, provided no buffer precedes it (a
// buffer would queue unadmitted items, defeating shed-before-the-first-
// queue); otherwise the leading stage (an active source pushes, so the gate
// still runs in push mode there).
func AdmissionIndex(stages []core.Stage) int {
	for i, st := range stages {
		if _, ok := st.IsBuffer(); ok {
			return 0
		}
		if _, ok := st.IsPump(); ok {
			return i
		}
	}
	return 0
}

// Tenant returns the tenant this gate admits for.
func (a *Admission) Tenant() *Tenant { return a.tenant }

// Style implements core.Component.
func (a *Admission) Style() core.Style { return core.StyleFunction }

// Convert implements core.Function: the admission decision.  Conforming
// items pass and charge the bucket; non-conforming items are dropped
// (ShedDrop: recycled and counted, nil result filters them from the flow) or
// the producing thread sleeps until the bucket conforms (ShedBlock:
// source-side backpressure, control events still dispatched while asleep).
//
// A live RebindTenant rate change is picked up here: one atomic generation
// load per item (alloc-free) detects it, and the bucket parameters are
// recomputed out of line.
//
//ipvet:hotpath admission fast path; every source item passes here
func (a *Admission) Convert(ctx *core.Ctx, it *item.Item) (*item.Item, error) {
	if g := a.tenant.rateGen.Load(); g != a.gen {
		a.reload(g)
	}
	if a.interval == 0 {
		a.tenant.admitted.Add(1)
		return it, nil
	}
	now := ctx.Now()
	conformAt := a.tat.Add(-a.tol)
	if now.Before(conformAt) {
		if a.tenant.shed == ShedDrop {
			a.tenant.sheds.Add(1)
			it.Recycle()
			return nil, nil
		}
		// ShedBlock: suspend the source until the bucket conforms.  The
		// sleep dispatches control events, and a stop abandons the item.
		//ipvet:allow hotalloc over-rate park path; the thread sleeps here, so the closure is not per-item cost
		if !ctx.Thread().SleepUntilOr(conformAt, ctx.Stopping) {
			it.Recycle()
			return nil, core.ErrStopped
		}
		now = ctx.Now()
	}
	if a.tat.Before(now) {
		a.tat = now
	}
	a.tat = a.tat.Add(a.interval)
	a.tenant.admitted.Add(1)
	return it, nil
}
