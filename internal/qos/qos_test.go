package qos_test

import (
	"runtime"
	"testing"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/pipes"
	"infopipes/internal/qos"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

func TestTenantDefaultsAndOptions(t *testing.T) {
	def := qos.NewTenant("plain")
	if def.Weight() != 1 || def.Rate() != 0 || def.ShedPolicy() != qos.ShedDrop ||
		def.Priority() != uthread.PriorityNormal {
		t.Fatalf("defaults wrong: %v", def)
	}
	tn := qos.NewTenant("gold",
		qos.Weight(4), qos.RateLimit(100, 8), qos.Shed(qos.ShedBlock),
		qos.Priority(uthread.PriorityHigh))
	if tn.Weight() != 4 || tn.Rate() != 100 || tn.Burst() != 8 ||
		tn.ShedPolicy() != qos.ShedBlock || tn.Priority() != uthread.PriorityHigh {
		t.Fatalf("options not applied: %v", tn)
	}
	// Clamps: weight and burst floors, negative rate clears the limit.
	clamped := qos.NewTenant("c", qos.Weight(0), qos.RateLimit(-5, 0))
	if clamped.Weight() != 1 || clamped.Rate() != 0 || clamped.Burst() != 1 {
		t.Fatalf("clamps wrong: weight=%d rate=%v burst=%d",
			clamped.Weight(), clamped.Rate(), clamped.Burst())
	}
}

func TestRegistry(t *testing.T) {
	r := qos.NewRegistry()
	a, b := qos.NewTenant("alpha"), qos.NewTenant("beta")
	if err := r.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(qos.NewTenant("alpha")); err == nil {
		t.Fatal("duplicate tenant name accepted")
	}
	if got, ok := r.Get("beta"); !ok || got != b {
		t.Fatal("Get(beta) failed")
	}
	if _, ok := r.Get("gamma"); ok {
		t.Fatal("Get(gamma) reported a tenant that was never added")
	}
	names := []string{}
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name())
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Tenants() = %v, want sorted [alpha beta]", names)
	}
}

// admitRun pushes `items` through source >> pump >> admission >> sink at
// the given source rate and returns the sink count.  The gate sits in push
// mode behind the pump — the position qos.AdmissionIndex picks in deployed
// segments — and the virtual clock makes its decisions deterministic.
func admitRun(t *testing.T, tn *qos.Tenant, items int64, srcRate float64) int {
	t.Helper()
	sched := uthread.New()
	sink := pipes.NewCollectSink("sink")
	stages := []core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pipes.NewClockedPump("pump", srcRate)),
		core.Comp(sink),
	}
	if got, want := qos.AdmissionIndex(stages), 1; got != want {
		t.Fatalf("AdmissionIndex = %d, want %d (the pump)", got, want)
	}
	stages = append(stages[:2], append([]core.Stage{
		core.Comp(qos.NewAdmission("gate", tn))}, stages[2:]...)...)
	p, err := core.Compose("admit", sched, nil, stages)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	return sink.Count()
}

// TestAdmissionShedDrop: a source pumping at 200/s through a 50/s drop
// tenant keeps one item in four — GCRA on the virtual clock, so the exact
// counts reproduce.
func TestAdmissionShedDrop(t *testing.T) {
	tn := qos.NewTenant("drop", qos.RateLimit(50, 1), qos.Shed(qos.ShedDrop))
	got := admitRun(t, tn, 200, 200)
	if tn.Admitted()+tn.Sheds() != 200 {
		t.Fatalf("admitted %d + sheds %d != 200 offered", tn.Admitted(), tn.Sheds())
	}
	if got != int(tn.Admitted()) {
		t.Fatalf("sink saw %d items, admission counted %d", got, tn.Admitted())
	}
	// 200/s offered, 50/s conforming: one in four, ±1 for bucket phase.
	if got < 49 || got > 51 {
		t.Fatalf("admitted %d of 200 at a 4:1 overload, want ~50", got)
	}
	// Determinism: same tenant config, fresh run, identical counts.
	tn2 := qos.NewTenant("drop2", qos.RateLimit(50, 1), qos.Shed(qos.ShedDrop))
	if got2 := admitRun(t, tn2, 200, 200); got2 != got {
		t.Fatalf("second run admitted %d, first %d — admission is not deterministic", got2, got)
	}
}

// TestAdmissionBurst: a burst-4 bucket forgives the first items of each
// quiet period; at a 2:1 overload, deeper burst admits strictly more.
func TestAdmissionBurst(t *testing.T) {
	shallow := qos.NewTenant("b1", qos.RateLimit(100, 1))
	deep := qos.NewTenant("b4", qos.RateLimit(100, 4))
	a := admitRun(t, shallow, 100, 200)
	b := admitRun(t, deep, 100, 200)
	if b <= a {
		t.Fatalf("burst-4 admitted %d, burst-1 admitted %d; deeper burst must admit more", b, a)
	}
}

// TestAdmissionShedBlock: blocking admission loses nothing — the source
// thread sleeps until the bucket conforms, so every item arrives and the
// tenant records zero sheds.
func TestAdmissionShedBlock(t *testing.T) {
	tn := qos.NewTenant("block", qos.RateLimit(50, 1), qos.Shed(qos.ShedBlock))
	got := admitRun(t, tn, 120, 200)
	if got != 120 {
		t.Fatalf("blocking admission delivered %d of 120", got)
	}
	if tn.Sheds() != 0 || tn.Admitted() != 120 {
		t.Fatalf("admitted=%d sheds=%d, want 120/0", tn.Admitted(), tn.Sheds())
	}
}

// TestAdmissionUnlimitedCountsOnly: a tenant without a rate limit is a
// pass-through that still feeds the items rollup.
func TestAdmissionUnlimitedCountsOnly(t *testing.T) {
	tn := qos.NewTenant("free")
	if got := admitRun(t, tn, 80, 400); got != 80 {
		t.Fatalf("unlimited admission delivered %d of 80", got)
	}
	if tn.Admitted() != 80 || tn.Sheds() != 0 {
		t.Fatalf("admitted=%d sheds=%d, want 80/0", tn.Admitted(), tn.Sheds())
	}
}

func mallocsOf(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestTenantHotPathAllocSteadyState guards the two per-item costs this
// subsystem adds: the admission fast path (GCRA conformance test) and the
// weighted-fair credit accounting in the scheduler's ready queue.  A classed
// pipeline with an admission gate must stay at zero allocations per item —
// measured as the slope between two run lengths, so composition and spawn
// constants cancel.
func TestTenantHotPathAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per sync op; the alloc guard runs in the non-race CI step")
	}
	run := func(items int64) uint64 {
		// Burst deeper than the run: the free pump cascades at one virtual
		// instant, so every item must conform for the full GCRA arithmetic
		// to run on the fast (admit) path each time.
		tn := qos.NewTenant("hot", qos.RateLimit(1_000_000, 40_000))
		cls := uthread.NewSchedClass("hot", 2)
		sched := uthread.New()
		sink := pipes.NewFuncSink("sink", func(_ *core.Ctx, it *item.Item) error {
			it.Recycle()
			return nil
		})
		// nil payload: a boxed payload would cost its own allocation per
		// item and mask what this guard measures.
		src := pipes.NewGeneratorSource("src", typespec.New("test/null"), items,
			func(ctx *core.Ctx, seq int64) (*item.Item, error) {
				return item.New(nil, seq, ctx.Now()), nil
			})
		p, err := core.Compose("alloc", sched, nil, []core.Stage{
			core.Comp(src),
			core.Pmp(pipes.NewFreePump("pump")),
			core.Comp(qos.NewAdmission("gate", tn)),
			core.Comp(sink),
		}, core.WithSchedClass(cls))
		if err != nil {
			t.Fatal(err)
		}
		mallocs := mallocsOf(func() {
			p.Start()
			if err := sched.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if tn.Admitted() != items {
			t.Fatalf("admitted %d items, want %d", tn.Admitted(), items)
		}
		return mallocs
	}
	run(1_000) // warm the item pool and runtime
	short, long := run(2_000), run(22_000)
	perItem := float64(int64(long)-int64(short)) / 20_000
	if perItem > 0.1 {
		t.Fatalf("tenant hot path allocates %.4f objects per item (admission + credit accounting must add zero)", perItem)
	}
}
