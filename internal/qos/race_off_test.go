//go:build !race

package qos_test

// raceEnabled reports whether the race detector instruments this build.
// The hot-path alloc guard skips under -race: the race runtime allocates
// shadow state per synchronization operation, which is not a cost of the
// code under test.  CI runs the guard in the dedicated alloc-guards step
// (no -race) and this package's behavior tests in the race step.
const raceEnabled = false
