//go:build race

package qos_test

// See race_off_test.go.
const raceEnabled = true
