// Package qos makes many deployments per shard a first-class, isolated
// workload: a tenant registry binding fairness weight, rate limit, burst and
// shed policy to each deployment; weighted-fair pump scheduling through
// uthread.SchedClass accounts; and admission control that sheds or blocks
// overload at the source, before the first queue, instead of letting a burst
// OOM the farm (ROADMAP "Multi-tenant QoS" — the cross-flow half the paper's
// §2.3 in-flow feedback machinery never had).
//
// Policy lives outside application logic and is bound at deploy time
// (RAFDA's thesis, applied to fairness the way PR 4/5 applied it to
// placement): a graph is deployed `WithTenant(t)` and every pump, coroutine
// and lane relay of that deployment is charged to the tenant's account.  The
// default (nil) tenant preserves fairness-unaware behavior byte-for-byte.
package qos

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"infopipes/internal/uthread"
)

// ShedPolicy selects what admission control does with a non-conforming item.
type ShedPolicy int

const (
	// ShedDrop discards over-rate items at the source (counted, recycled —
	// never queued).  The right policy for flows where freshness beats
	// completeness: media, sensor fans.
	ShedDrop ShedPolicy = iota
	// ShedBlock suspends the producing thread until the token bucket
	// conforms — source-side backpressure on the virtual clock.  The right
	// policy for flows that must not lose items.
	ShedBlock
)

// String returns the policy name.
func (p ShedPolicy) String() string {
	if p == ShedBlock {
		return "block"
	}
	return "drop"
}

// Tenant is one multi-tenancy principal: a named bundle of QoS policy that
// deployments bind to at deploy time.  Weight governs the weighted-fair
// scheduling share; Rate/Burst govern admission at sources; Shed selects the
// overload reaction; Priority is the static priority of the tenant's pumps
// (and is carried across shard links and TCP lanes).
//
// Name and shed policy are immutable after creation.  Weight, rate/burst and
// priority are live-tunable (the RebindTenant edit op): all are stored
// atomically so the hot paths that consult them (ready-queue admission, the
// GCRA gate) read without locks, and rateGen versions the rate/burst pair so
// a running Admission gate reloads its cached bucket parameters with a single
// extra atomic load per item.  The counters are bumped atomically
// (alloc-free) as items are admitted or shed.
type Tenant struct {
	name string
	shed ShedPolicy

	weight  atomic.Int64
	rate    atomic.Uint64 // math.Float64bits; items/s per source; 0 = unlimited
	burst   atomic.Int64  // token-bucket depth in items (min 1 when rate-limited)
	prio    atomic.Int64  // uthread.Priority
	rateGen atomic.Uint64 // bumped on every SetRate; Admission reload trigger

	admitted atomic.Int64
	sheds    atomic.Int64
}

// TenantOption configures a Tenant.
type TenantOption func(*Tenant)

// Weight sets the weighted-fair share (minimum 1; default 1).  Relative: a
// weight-2 tenant receives twice the contended scheduling share of a
// weight-1 tenant.
func Weight(w int) TenantOption {
	return func(t *Tenant) { t.SetWeight(w) }
}

// RateLimit bounds each of the tenant's sources to itemsPerSec with the
// given burst depth (a token bucket on the deployment's virtual clock).
// Zero itemsPerSec removes the limit.
func RateLimit(itemsPerSec float64, burst int) TenantOption {
	return func(t *Tenant) { t.SetRate(itemsPerSec, burst) }
}

// Shed selects the overload policy (default ShedDrop).
func Shed(p ShedPolicy) TenantOption {
	return func(t *Tenant) { t.shed = p }
}

// Priority sets the static priority of the tenant's pump threads (default
// uthread.PriorityNormal).  The priority propagates across shard links and
// TCP lanes, so a high-priority tenant stays high-priority on every hop.
func Priority(p uthread.Priority) TenantOption {
	return func(t *Tenant) { t.SetPriority(p) }
}

// NewTenant creates a tenant with the given name.  Defaults: weight 1, no
// rate limit, ShedDrop, PriorityNormal.
func NewTenant(name string, opts ...TenantOption) *Tenant {
	t := &Tenant{name: name}
	t.weight.Store(1)
	t.burst.Store(1)
	t.prio.Store(int64(uthread.PriorityNormal))
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the weighted-fair share.  Safe from any goroutine.
func (t *Tenant) Weight() int { return int(t.weight.Load()) }

// SetWeight retunes the weighted-fair share (minimum 1).  The deployment
// layer propagates the change into the live scheduler credit classes; this
// records the policy so later deploys and stats see it.  Safe from any
// goroutine.
func (t *Tenant) SetWeight(w int) {
	if w < 1 {
		w = 1
	}
	t.weight.Store(int64(w))
}

// Rate returns the admission rate limit in items/s per source (0 =
// unlimited).  Safe from any goroutine.
func (t *Tenant) Rate() float64 { return math.Float64frombits(t.rate.Load()) }

// Burst returns the admission token-bucket depth in items.  Safe from any
// goroutine.
func (t *Tenant) Burst() int { return int(t.burst.Load()) }

// SetRate retunes the admission rate limit (0 = unlimited) and burst depth
// (minimum 1) and bumps the rate generation, so every live Admission gate of
// the tenant reloads its bucket parameters on its next item.  Safe from any
// goroutine.
func (t *Tenant) SetRate(itemsPerSec float64, burst int) {
	if itemsPerSec < 0 {
		itemsPerSec = 0
	}
	if burst < 1 {
		burst = 1
	}
	t.rate.Store(math.Float64bits(itemsPerSec))
	t.burst.Store(int64(burst))
	t.rateGen.Add(1)
}

// RateGen returns the current rate generation (bumped by SetRate).  Live
// admission gates compare it against their cached snapshot.  Safe from any
// goroutine.
func (t *Tenant) RateGen() uint64 { return t.rateGen.Load() }

// ShedPolicy returns the overload policy.
func (t *Tenant) ShedPolicy() ShedPolicy { return t.shed }

// Priority returns the tenant's pump priority.  Safe from any goroutine.
func (t *Tenant) Priority() uthread.Priority { return uthread.Priority(t.prio.Load()) }

// SetPriority retunes the pump priority recorded for the tenant.  Threads
// already spawned keep their static priority — the new value applies to
// compositions made after the change (a structural edit or redeploy); weight
// is the live actuator for running flows.  Safe from any goroutine.
func (t *Tenant) SetPriority(p uthread.Priority) { t.prio.Store(int64(p)) }

// Admitted returns the number of items admission control let through.  Safe
// from any goroutine.
func (t *Tenant) Admitted() int64 { return t.admitted.Load() }

// Sheds returns the number of items admission control dropped.  Safe from
// any goroutine.
func (t *Tenant) Sheds() int64 { return t.sheds.Load() }

// String summarises the tenant for diagnostics.
func (t *Tenant) String() string {
	return fmt.Sprintf("tenant(%s w=%d rate=%g burst=%d shed=%s prio=%d)",
		t.name, t.Weight(), t.Rate(), t.Burst(), t.shed, t.Priority())
}

// Registry holds the tenants known to a node or process.  It exists so
// operators can enumerate tenants deterministically (sorted by name) and so
// remote deployments can resolve a tenant by name.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Add registers a tenant, refusing duplicates by name.
func (r *Registry) Add(t *Tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[t.name]; dup {
		return fmt.Errorf("qos: tenant %q already registered", t.name)
	}
	r.tenants[t.name] = t
	return nil
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Tenants returns every registered tenant sorted by name (deterministic
// iteration for stats rollups and operator views).
func (r *Registry) Tenants() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t) //ipvet:allow maporder sorted by name below before returning
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
