package remote_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/item"
	"infopipes/internal/remote"
	"infopipes/internal/typespec"
)

// TestRemoteStatsAndHealthRoundTrip drives the new §2.4 ops over real TCP:
// health reports liveness counters, and stats snapshots the pump counters
// of hosted pipelines, prefix-filtered.
func TestRemoteStatsAndHealthRoundTrip(t *testing.T) {
	node, sink, addr := newTestNode(t, "nodeA")
	node.Scheduler().RunBackground()
	defer node.Scheduler().Stop()

	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	h, err := c.Health()
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Node != "nodeA" || h.Pipelines != 0 {
		t.Fatalf("health = %+v, want node nodeA with 0 pipelines", h)
	}

	if err := c.Compose("g/flow", []remote.StageSpec{
		{Kind: "counter-source", Name: "src", Params: map[string]string{"limit": "25"}},
		{Kind: "free-pump", Name: "pump"},
		{Kind: "collect-sink", Name: "sink"},
	}); err != nil {
		t.Fatalf("compose: %v", err)
	}
	if err := c.Start("g/flow"); err != nil {
		t.Fatalf("start: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.Count() < 25 {
		if time.Now().After(deadline) {
			t.Fatal("stream never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rows, err := c.Stats("g/")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(rows) != 1 || rows[0].Name != "g/flow" {
		t.Fatalf("stats rows = %+v, want exactly g/flow", rows)
	}
	if rows[0].Items != 25 {
		t.Fatalf("items = %d, want 25", rows[0].Items)
	}
	if !rows[0].EOS {
		t.Fatal("finished pipeline not reported at EOS")
	}
	if rows, _ := c.Stats("other/"); len(rows) != 0 {
		t.Fatalf("prefix filter leaked rows: %+v", rows)
	}

	h, err = c.Health()
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Pipelines != 1 || h.UptimeNanos <= 0 {
		t.Fatalf("health after compose = %+v, want 1 pipeline and positive uptime", h)
	}
}

// audioIn is a producer-style boundary stage requiring an "audio" inbound
// flow — the seeded compose merges the carried seed with its InputSpec,
// exactly as a graph segment's receiving boundary does.
type audioIn struct{ core.Base }

func (s *audioIn) Style() core.Style                  { return core.StyleProducer }
func (s *audioIn) InputSpec() typespec.Typespec       { return typespec.New("audio") }
func (s *audioIn) Pull(*core.Ctx) (*item.Item, error) { return nil, core.ErrEOS }

// TestRemoteSeededComposeChecksFlow: a seeded compose starts Typespec
// propagation from the carried upstream spec — an incompatible boundary
// stage is rejected, the §2.3 check crossing the wire.
func TestRemoteSeededComposeChecksFlow(t *testing.T) {
	node, _, addr := newTestNode(t, "nodeA")
	node.RegisterFactory("audio-in", func(n string, _ map[string]string) (core.Stage, error) {
		return core.Comp(&audioIn{Base: core.Base{CompName: n}}), nil
	})

	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	stages := []remote.StageSpec{
		{Kind: "audio-in", Name: "in"},
		{Kind: "free-pump", Name: "pump"},
		{Kind: "collect-sink", Name: "sink"},
	}
	err = c.ComposeSeededSegment("g/seg", stages, typespec.New("video"))
	if err == nil {
		t.Fatal("mistyped seeded compose succeeded")
	}
	if !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("error %q does not name the typespec incompatibility", err)
	}
	// The same compose with a compatible seed (or none) succeeds.
	if err := c.ComposeSeededSegment("g/seg", stages, typespec.New("audio")); err != nil {
		t.Fatalf("compatible seeded compose: %v", err)
	}
}

// TestRemoteCapsRoundTrip: the caps op serves a pipeline's event-capability
// sets for the deployer's graph-wide §2.3 check.
func TestRemoteCapsRoundTrip(t *testing.T) {
	_, _, addr := newTestNode(t, "nodeA")
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Compose("g/flow", []remote.StageSpec{
		{Kind: "counter-source", Name: "src", Params: map[string]string{"limit": "1"}},
		{Kind: "free-pump", Name: "pump"},
		{Kind: "collect-sink", Name: "sink"},
	}); err != nil {
		t.Fatalf("compose: %v", err)
	}
	sends, handles, err := c.Caps("g/flow")
	if err != nil {
		t.Fatalf("caps: %v", err)
	}
	// The standard test stages declare no local capabilities; the call
	// itself round-tripping empty sets is the contract.
	if len(sends) != 0 || len(handles) != 0 {
		t.Logf("caps: sends=%v handles=%v", sends, handles)
	}
	if _, _, err := c.Caps("nope"); err == nil {
		t.Fatal("caps of unknown pipeline succeeded")
	}
}

// TestRemoteCallTimeout: a node that accepts connections but never answers
// makes calls fail with the wrapped ErrNodeUnreachable after the per-call
// deadline, instead of hanging forever.
func TestRemoteCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Wedged node: read requests, answer nothing.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := remote.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err = c.Ping()
	if err == nil {
		t.Fatal("ping of a wedged node succeeded")
	}
	if !errors.Is(err, remote.ErrNodeUnreachable) {
		t.Fatalf("err = %v, want wrapped ErrNodeUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call took %v, deadline not applied", elapsed)
	}
}

// TestRemoteDialUnreachable: dial failures wrap ErrNodeUnreachable too.
func TestRemoteDialUnreachable(t *testing.T) {
	// Bind-then-close to get a port nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := remote.Dial(addr); !errors.Is(err, remote.ErrNodeUnreachable) {
		t.Fatalf("dial err = %v, want wrapped ErrNodeUnreachable", err)
	}
}

// TestRemoteDetachOp: detach tears one pipeline down without touching its
// bus neighbours and frees the name.
func TestRemoteDetachOp(t *testing.T) {
	node, sink, addr := newTestNode(t, "nodeA")
	node.Scheduler().RunBackground()
	defer node.Scheduler().Stop()
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	compose := func(name string) {
		if err := c.Compose(name, []remote.StageSpec{
			{Kind: "counter-source", Name: "src", Params: map[string]string{"limit": "0"}},
			{Kind: "free-pump", Name: "pump"},
			{Kind: "collect-sink", Name: "sink"},
		}); err != nil {
			t.Fatalf("compose %s: %v", name, err)
		}
	}
	compose("g/a")
	if err := c.Start("g/a"); err != nil {
		t.Fatalf("start: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.Count() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("stream never moved")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Detach("g/a"); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if _, err := c.Stats("g/a"); err != nil {
		t.Fatalf("stats after detach: %v", err)
	}
	if rows, _ := c.Stats("g/a"); len(rows) != 0 {
		t.Fatalf("detached pipeline still listed: %+v", rows)
	}
	// The name is free again.
	compose("g/a")
	if err := c.Detach("g/nope"); err == nil {
		t.Fatal("detach of unknown pipeline succeeded")
	}
}
