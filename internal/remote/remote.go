// Package remote implements the distribution support of §2.4 beyond data
// transport: protocols and factories for the creation of remote Infopipe
// components, remote Typespec queries, and delivery of control events to
// remote components through the platform.
//
// A Node hosts a scheduler, an event bus and a registry of component
// factories; it serves a small gob-encoded control protocol over TCP.  A
// Client composes pipelines from stage specifications on a remote node,
// starts and stops them, queries resolved Typespecs, and injects control
// events into the remote bus.
package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/qos"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// StageSpec describes one stage of a remote pipeline: the factory kind,
// the stage name, positional arguments and key=value parameters.
type StageSpec struct {
	Kind   string
	Name   string
	Args   []string
	Params map[string]string
}

// TenantSpec carries a deployment's QoS tenant binding across the control
// protocol: the node materializes (once, keyed by name) a local qos.Tenant
// plus a weighted-fair scheduler class from it, so multi-tenant isolation
// spans node boundaries exactly as it does shards.
type TenantSpec struct {
	Name   string
	Weight int
	// Rate/Burst parameterize source admission control (0 = unlimited).
	Rate  float64
	Burst int
	// Shed is the qos.ShedPolicy ordinal; Prio the uthread.Priority level.
	Shed int
	Prio int
}

// TenantStat is one node's QoS rollup for one tenant, served by the tenants
// op: admission outcomes plus the weighted-fair class state against the
// node scheduler's fair clock.
type TenantStat struct {
	Name            string
	Weight          int
	Admitted, Sheds int64
	// CreditDebt is the class's virtual-time lead over the scheduler's fair
	// clock (scaled units, 0 when idle or underserved).
	CreditDebt int64
	// Granted counts run-token grants to the tenant's threads; SchedGrants
	// the scheduler's total, so callers can compute occupancy share.
	Granted, SchedGrants int64
}

// Factory builds a stage from a spec.  Factories are registered per node.
type Factory func(name string, params map[string]string) (core.Stage, error)

// SpecFactory is the full-spec factory form: it sees the positional
// arguments too, as the graph deployer's specs carry them.  A kind may be
// registered as either form; SpecFactory wins.
type SpecFactory func(spec StageSpec) (core.Stage, error)

// ErrUnknownFactory is returned when a spec names an unregistered kind.
var ErrUnknownFactory = errors.New("remote: unknown component factory")

// ErrUnknownPipeline is returned for operations on unknown pipeline names.
var ErrUnknownPipeline = errors.New("remote: unknown pipeline")

// ErrNodeUnreachable wraps every transport-level failure of a client call —
// dial errors, send/receive errors, and per-call deadline expiry on a
// wedged node.  Application-level errors (a factory rejecting a spec, an
// unknown pipeline) are NOT wrapped: reaching the node and being told no is
// not unreachability.  Inspect with errors.Is.
var ErrNodeUnreachable = errors.New("remote: node unreachable")

// DefaultCallTimeout bounds each control call unless the caller overrides
// it with SetCallTimeout.  Control operations are small request/response
// exchanges; a node that cannot answer within this window is treated as
// unreachable rather than letting Start/Stop/Wait hang forever.
const DefaultCallTimeout = 10 * time.Second

// Node hosts remotely composable pipelines.
type Node struct {
	name  string
	sched *uthread.Scheduler
	bus   *events.Bus

	mu            sync.Mutex
	factories     map[string]Factory
	specFactories map[string]SpecFactory
	resolver      func(key string) (string, error)
	controller    func(op string, params map[string]string) (string, error)
	pipelines     map[string]*core.Pipeline
	// tenants/classes hold the node-local materialization of TenantSpecs:
	// one tenant and one weighted-fair class per tenant name (a node has one
	// scheduler, so one class per tenant suffices).
	tenants map[string]*qos.Tenant
	classes map[string]*uthread.SchedClass
	ln      net.Listener
	closed  bool
	closers []func()
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	started time.Time
}

// NewNode creates a node over the given scheduler and bus.
func NewNode(name string, sched *uthread.Scheduler, bus *events.Bus) *Node {
	return &Node{
		name:          name,
		sched:         sched,
		bus:           bus,
		factories:     make(map[string]Factory),
		specFactories: make(map[string]SpecFactory),
		pipelines:     make(map[string]*core.Pipeline),
		conns:         make(map[net.Conn]struct{}),
	}
}

// Name returns the node name (the Typespec location of its pipelines).
func (n *Node) Name() string { return n.name }

// Bus returns the node's event bus.
func (n *Node) Bus() *events.Bus { return n.bus }

// Scheduler returns the node's scheduler.
func (n *Node) Scheduler() *uthread.Scheduler { return n.sched }

// RegisterFactory adds a component factory under kind.
func (n *Node) RegisterFactory(kind string, f Factory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.factories[kind] = f
}

// RegisterSpecFactory adds a full-spec component factory under kind.
func (n *Node) RegisterSpecFactory(kind string, f SpecFactory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.specFactories[kind] = f
}

// SetResolver installs the handler behind the lookup op for node-specific
// keys (the graph support registers listener addresses under "addr:NAME").
// Built-in keys ("done:PIPELINE", "err:PIPELINE", "sections:PIPELINE") are
// answered before the resolver is consulted.
func (n *Node) SetResolver(r func(key string) (string, error)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resolver = r
}

// SetController installs the handler behind the ctl op: parameterized
// node-side actions beyond lookups (the graph support uses it to pre-bind
// rendezvous listeners, drop lane state, and redial stationary senders when
// a segment is re-placed onto another node).
func (n *Node) SetController(c func(op string, params map[string]string) (string, error)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.controller = c
}

// Pipeline returns a locally hosted pipeline by name.
func (n *Node) Pipeline(name string) (*core.Pipeline, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.pipelines[name]
	return p, ok
}

// PipelineNames lists the hosted pipelines.
func (n *Node) PipelineNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.pipelines))
	for name := range n.pipelines {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RemovePipeline forgets a hosted pipeline, freeing its name for a new
// composition (deployment rollback).  The pipeline itself is returned so
// the caller can stop it; removal does not stop it.
func (n *Node) RemovePipeline(name string) (*core.Pipeline, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.pipelines[name]
	delete(n.pipelines, name)
	return p, ok
}

// Serve starts the control server on addr ("host:0" picks a port) and
// returns the bound address.  The server runs until Close.
func (n *Node) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: node %s listen: %w", n.name, err)
	}
	n.mu.Lock()
	n.ln = ln
	n.started = time.Now() //ipvet:allow wallclock uptime baseline for operator-facing health reports
	n.mu.Unlock()
	// While serving, remote clients can compose and post at any time, so
	// the node's scheduler must idle rather than drain.
	n.sched.AddExternalSource()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// RegisterCloser adds a hook run by Close after the control server goes
// down.  The graph support registers the node's lane shutdown here, so
// closing a node in-process behaves like killing its process: every data
// socket dies with the control socket, and peers see EOF instead of zombie
// connections.
func (n *Node) RegisterCloser(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closers = append(n.closers, fn)
}

// Close shuts the control server down and waits for connection handlers.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ln := n.ln
	closers := n.closers
	n.closers = nil
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
		n.sched.ReleaseExternalSource()
	}
	for _, fn := range closers {
		fn()
	}
	n.wg.Wait()
}

// Wire protocol.
type request struct {
	Op         string // compose | start | stop | detach | query | stats | health | caps | event | lookup | ctl | ping | rebind
	Pipeline   string
	Stages     []StageSpec
	StageIndex int
	Event      events.Event
	Key        string            // lookup key / ctl op name / stats prefix
	Params     map[string]string // ctl parameters
	// SkipEventCheck composes without the per-pipeline §2.3 event-
	// capability check: graph deployments run that check graph-wide on
	// the deployer instead, since an event emitted in one segment may be
	// handled in another.
	SkipEventCheck bool
	// Seeded carries the upstream Typespec into a compose: the node seeds
	// spec propagation with it (core.WithInputSpec), so §2.3 flow checking
	// spans node boundaries — a mistyped cross-node edge fails right here,
	// at composition.
	Seeded bool
	Seed   typespec.Typespec
	// Tenant binds the composed pipeline to a QoS tenant (weighted-fair
	// scheduling on the node); Admit additionally inserts the tenant's
	// admission control behind the pipeline's first stage (set for
	// true-source segments only — boundary-headed segments carry
	// already-admitted items).
	Tenant *TenantSpec
	Admit  bool
}

// PipeStat is one hosted pipeline's telemetry row as served by the stats
// op: the alloc-free pump counters plus lifecycle state.
type PipeStat struct {
	Name                     string
	Items, Cycles, BusyNanos int64
	Done, EOS                bool
	Err                      string
}

// Health is the node liveness report served by the health op, the heartbeat
// payload of a cluster directory.
type Health struct {
	Node        string
	Pipelines   int
	Switches    int64
	UptimeNanos int64
}

type response struct {
	Err     string
	Spec    typespec.Typespec
	Node    string
	Value   string // lookup / ctl result
	Stats   []PipeStat
	Tenants []TenantStat
	Health  Health
	// Sends/Handles are the event-capability sets of a pipeline (caps op).
	Sends, Handles []string
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := n.handle(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req request) response {
	switch req.Op {
	case "ping":
		return response{Node: n.name}
	case "compose":
		if err := n.compose(req.Pipeline, req.Stages, req.SkipEventCheck, req.Seeded, req.Seed,
			req.Tenant, req.Admit); err != nil {
			return response{Err: err.Error()}
		}
		return response{Node: n.name}
	case "start", "stop":
		p, ok := n.Pipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		if req.Op == "start" {
			p.Start()
		} else {
			p.Stop()
		}
		return response{}
	case "detach":
		// Tear one pipeline down for re-placement: no event broadcast (the
		// rest of the node's pipelines are undisturbed), threads joined,
		// name freed for a recomposition elsewhere.
		p, ok := n.RemovePipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		p.Detach()
		<-p.Done()
		return response{Node: n.name}
	case "query":
		p, ok := n.Pipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		return response{Spec: p.SpecAt(req.StageIndex), Node: n.name}
	case "stats":
		return response{Node: n.name, Stats: n.stats(req.Key)}
	case "tenants":
		return response{Node: n.name, Tenants: n.tenantStats()}
	case "rebind":
		if req.Tenant == nil {
			return response{Err: "remote: rebind without tenant spec"}
		}
		n.rebindTenant(req.Tenant)
		return response{Node: n.name}
	case "health":
		return response{Node: n.name, Health: n.health()}
	case "caps":
		p, ok := n.Pipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		sends, handles := p.EventCapabilities()
		return response{Node: n.name, Sends: typeStrings(sends), Handles: typeStrings(handles)}
	case "event":
		n.bus.Broadcast(req.Event)
		return response{}
	case "lookup":
		v, err := n.lookup(req.Key)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Value: v, Node: n.name}
	case "ctl":
		n.mu.Lock()
		c := n.controller
		n.mu.Unlock()
		if c == nil {
			return response{Err: fmt.Sprintf("remote: node %s has no controller (ctl %q)", n.name, req.Key)}
		}
		v, err := c(req.Key, req.Params)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Value: v, Node: n.name}
	default:
		return response{Err: fmt.Sprintf("remote: unknown op %q", req.Op)}
	}
}

func typeStrings(ts []events.Type) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = string(t)
	}
	return out
}

// stats snapshots the pump counters of every hosted pipeline whose name
// starts with prefix ("" = all).  Row order is unspecified; callers key the
// rows by name.
func (n *Node) stats(prefix string) []PipeStat {
	n.mu.Lock()
	ps := make(map[string]*core.Pipeline, len(n.pipelines))
	for name, p := range n.pipelines {
		if strings.HasPrefix(name, prefix) {
			ps[name] = p
		}
	}
	n.mu.Unlock()
	names := make([]string, 0, len(ps))
	for name := range ps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PipeStat, 0, len(ps))
	for _, name := range names {
		p := ps[name]
		st := p.Stats()
		row := PipeStat{Name: name, Items: st.Items, Cycles: st.Cycles,
			BusyNanos: st.BusyNanos, EOS: p.ReachedEOS()}
		select {
		case <-p.Done():
			row.Done = true
		default:
		}
		if err := p.Err(); err != nil {
			row.Err = err.Error()
		}
		out = append(out, row)
	}
	return out
}

// health reports the node's liveness counters (heartbeat payload).
func (n *Node) health() Health {
	n.mu.Lock()
	pipelines := len(n.pipelines)
	started := n.started
	n.mu.Unlock()
	h := Health{Node: n.name, Pipelines: pipelines, Switches: n.sched.Stats().Switches}
	if !started.IsZero() {
		h.UptimeNanos = int64(time.Since(started)) //ipvet:allow wallclock operator-facing uptime in the health payload
	}
	return h
}

// lookup answers the built-in keys and defers the rest to the resolver
// (§2.4 remote queries beyond Typespecs: liveness, errors, rendezvous
// addresses of graph deployments).
func (n *Node) lookup(key string) (string, error) {
	if name, ok := strings.CutPrefix(key, "done:"); ok {
		p, exists := n.Pipeline(name)
		if !exists {
			return "", fmt.Errorf("%w: %q", ErrUnknownPipeline, name)
		}
		select {
		case <-p.Done():
			return "true", nil
		default:
			return "false", nil
		}
	}
	if name, ok := strings.CutPrefix(key, "err:"); ok {
		p, exists := n.Pipeline(name)
		if !exists {
			return "", fmt.Errorf("%w: %q", ErrUnknownPipeline, name)
		}
		if err := p.Err(); err != nil {
			return err.Error(), nil
		}
		return "", nil
	}
	if name, ok := strings.CutPrefix(key, "sections:"); ok {
		// The pump-driven section count of a composed pipeline (buffers add
		// sections).  The graph deployer records it per segment: a durable
		// self-acking lane can only prove consumption for single-section
		// (single-pump) receivers, so multi-section segments refuse Replace.
		p, exists := n.Pipeline(name)
		if !exists {
			return "", fmt.Errorf("%w: %q", ErrUnknownPipeline, name)
		}
		return strconv.Itoa(len(p.Plan().Sections)), nil
	}
	n.mu.Lock()
	r := n.resolver
	n.mu.Unlock()
	if r == nil {
		return "", fmt.Errorf("remote: no resolver for key %q", key)
	}
	return r(key)
}

// tenantFor materializes a TenantSpec into the node-local tenant and its
// weighted-fair scheduler class, creating both on first reference (keyed by
// tenant name — every segment of a deployment, and every deployment naming
// the same tenant, shares one pair per node).
func (n *Node) tenantFor(ts *TenantSpec) (*qos.Tenant, *uthread.SchedClass) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tenants == nil {
		n.tenants = make(map[string]*qos.Tenant)
		n.classes = make(map[string]*uthread.SchedClass)
	}
	t, ok := n.tenants[ts.Name]
	if !ok {
		t = qos.NewTenant(ts.Name,
			qos.Weight(ts.Weight),
			qos.RateLimit(ts.Rate, ts.Burst),
			qos.Shed(qos.ShedPolicy(ts.Shed)),
			qos.Priority(uthread.Priority(ts.Prio)))
		n.tenants[ts.Name] = t
		n.classes[ts.Name] = uthread.NewSchedClass(ts.Name, t.Weight())
	}
	return t, n.classes[ts.Name]
}

// rebindTenant applies a live QoS retune to the node-local materialization
// of a tenant (the rebind op): the tenant's weight, rate/burst and priority
// are restored from the spec, and the weighted-fair class follows the new
// weight.  A node that never referenced the tenant materializes it now with
// the new policy, so segments placed here later (failover, replace) compose
// against the retuned values.  Weight takes effect at the class's next
// ready-queue admission — within one pump cycle; rate on each admission
// gate's next item; priority on compositions made after the change.
func (n *Node) rebindTenant(ts *TenantSpec) {
	t, c := n.tenantFor(ts)
	t.SetWeight(ts.Weight)
	t.SetRate(ts.Rate, ts.Burst)
	t.SetPriority(uthread.Priority(ts.Prio))
	c.SetWeight(ts.Weight)
}

// tenantStats snapshots every tenant hosted on the node, sorted by name.
func (n *Node) tenantStats() []TenantStat {
	n.mu.Lock()
	names := make([]string, 0, len(n.tenants))
	for name := range n.tenants {
		names = append(names, name)
	}
	tenants := n.tenants
	classes := n.classes
	n.mu.Unlock()
	sort.Strings(names)
	grants := n.sched.Stats().Grants
	fair := n.sched.FairNow()
	out := make([]TenantStat, 0, len(names))
	for _, name := range names {
		t, c := tenants[name], classes[name]
		row := TenantStat{Name: name, Weight: t.Weight(),
			Admitted: t.Admitted(), Sheds: t.Sheds(),
			Granted: c.Granted(), SchedGrants: grants}
		if debt := c.VTime() - fair; debt > 0 {
			row.CreditDebt = debt
		}
		out = append(out, row)
	}
	return out
}

// compose builds a pipeline from stage specs via the factory registry.  A
// seeded compose starts Typespec propagation from the upstream segment's
// resolved spec instead of a blank one.  A tenant-bound compose schedules
// the pipeline under the tenant's weighted-fair class; admit additionally
// gates the flow with the tenant's admission control behind the first stage.
func (n *Node) compose(name string, specs []StageSpec, skipEventCheck, seeded bool, seed typespec.Typespec, ts *TenantSpec, admit bool) error {
	var tenant *qos.Tenant
	var class *uthread.SchedClass
	if ts != nil {
		tenant, class = n.tenantFor(ts)
	}
	stages := make([]core.Stage, 0, len(specs)+1)
	n.mu.Lock()
	factories := n.factories
	specFactories := n.specFactories
	n.mu.Unlock()
	for _, sp := range specs {
		if sf, ok := specFactories[sp.Kind]; ok {
			st, err := sf(sp)
			if err != nil {
				return fmt.Errorf("remote: factory %q: %w", sp.Kind, err)
			}
			stages = append(stages, st)
		} else if f, ok := factories[sp.Kind]; ok {
			st, err := f(sp.Name, sp.Params)
			if err != nil {
				return fmt.Errorf("remote: factory %q: %w", sp.Kind, err)
			}
			stages = append(stages, st)
		} else {
			return fmt.Errorf("%w: %q", ErrUnknownFactory, sp.Kind)
		}
	}
	if admit && tenant != nil {
		// Admission gates the true source before the first queue — over-rate
		// flows shed (or block) here instead of filling the node's shared
		// buffers and lanes.  The gate runs in push mode behind the
		// pipeline's pump (see qos.AdmissionIndex).
		at := qos.AdmissionIndex(stages) + 1
		gate := core.Comp(qos.NewAdmission(name+"/admit", tenant))
		stages = append(stages, core.Stage{})
		copy(stages[at+1:], stages[at:])
		stages[at] = gate
	}
	var opts []core.ComposeOption
	if skipEventCheck {
		opts = append(opts, core.SkipEventCapabilityCheck())
	}
	if seeded {
		opts = append(opts, core.WithInputSpec(seed))
	}
	if class != nil {
		opts = append(opts, core.WithSchedClass(class))
	}
	p, err := core.Compose(name, n.sched, n.bus, stages, opts...)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pipelines == nil {
		n.pipelines = make(map[string]*core.Pipeline)
	}
	if _, dup := n.pipelines[name]; dup {
		return fmt.Errorf("remote: pipeline %q already exists", name)
	}
	n.pipelines[name] = p
	return nil
}

// Client drives a remote node.  Calls are serialized internally (one
// request/response exchange at a time), so a client may be shared between a
// deployment's Wait poller and a telemetry or balancer loop.
type Client struct {
	mu      sync.Mutex
	addr    string
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
	// broken latches the first transport failure.  A timed-out or
	// interrupted exchange leaves the shared gob stream desynchronized —
	// the server's stale response would pair with the NEXT request — so
	// the connection is closed and every later call fails fast with the
	// latched error instead of silently decoding the wrong response.
	broken error
}

// Dial connects to a node's control address.  Calls carry the default
// per-call deadline (DefaultCallTimeout); adjust with SetCallTimeout.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrNodeUnreachable, addr, err)
	}
	return &Client{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
		timeout: DefaultCallTimeout}, nil
}

// Addr returns the control address the client was dialed against.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// Reconnect re-dials the node's control address in place, clearing a broken
// latch: a transport blip (a timed-out probe, a severed connection) poisons
// the client permanently, but the node behind it may be perfectly healthy —
// and the same *Client is held by deployments, so healing must happen here,
// not by swapping in a fresh client.  On failure the client stays broken.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("%w: redial %s: %v", ErrNodeUnreachable, c.addr, err)
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	c.broken = nil
	return nil
}

// SetCallTimeout bounds each control call: a node that does not answer
// within d makes the call fail with a wrapped ErrNodeUnreachable instead of
// hanging Start/Stop/Wait forever.  Zero disables the deadline.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Close releases the control connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return response{}, c.broken
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout)) //ipvet:allow wallclock per-call I/O deadline on the control socket
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(&req); err != nil {
		return response{}, c.breakConn("send", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, c.breakConn("receive", err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// breakConn (mu held) poisons the client after a transport failure and
// closes the connection, so no later call can pair with a stale response.
func (c *Client) breakConn(stage string, err error) error {
	c.broken = fmt.Errorf("%w: %s: %v", ErrNodeUnreachable, stage, err)
	c.conn.Close()
	return c.broken
}

// Ping checks liveness and returns the node name.
func (c *Client) Ping() (string, error) {
	resp, err := c.call(request{Op: "ping"})
	return resp.Node, err
}

// Compose creates a pipeline on the remote node from stage specs.
func (c *Client) Compose(pipeline string, stages []StageSpec) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages})
	return err
}

// ComposeSegment creates a pipeline that is one segment of a graph
// deployment: the per-pipeline §2.3 event-capability check is skipped,
// exactly as the local graph deployer skips it — an event emitted in one
// segment may be handled in another.
func (c *Client) ComposeSegment(pipeline string, stages []StageSpec) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages, SkipEventCheck: true})
	return err
}

// ComposeSeededSegment is ComposeSegment carrying the upstream segment's
// resolved Typespec: the node seeds spec propagation with it, so §2.3 flow
// checking spans the node boundary and a mistyped cross-node edge fails at
// composition with the typespec error.
func (c *Client) ComposeSeededSegment(pipeline string, stages []StageSpec, seed typespec.Typespec) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages,
		SkipEventCheck: true, Seeded: true, Seed: seed})
	return err
}

// ComposeTenantSegment is ComposeSeededSegment with a QoS tenant binding:
// the node schedules the pipeline under the tenant's weighted-fair class,
// and — when admit is set (true-source segments) — gates the flow with the
// tenant's admission control behind the first stage.  A nil tenant behaves
// exactly like ComposeSeededSegment.
func (c *Client) ComposeTenantSegment(pipeline string, stages []StageSpec, seed typespec.Typespec, tenant *TenantSpec, admit bool) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages,
		SkipEventCheck: true, Seeded: true, Seed: seed, Tenant: tenant, Admit: admit})
	return err
}

// Tenants fetches the node's per-tenant QoS rollups (admission counters,
// weighted-fair credit state), sorted by tenant name.
func (c *Client) Tenants() ([]TenantStat, error) {
	resp, err := c.call(request{Op: "tenants"})
	return resp.Tenants, err
}

// RebindTenant pushes a live QoS retune of a tenant to the node: weight,
// rate/burst and priority are re-applied to the node's materialization of
// the named tenant (created with the new policy if the node never saw it).
// The remote half of the graph layer's RebindTenant edit op.
func (c *Client) RebindTenant(ts TenantSpec) error {
	_, err := c.call(request{Op: "rebind", Tenant: &ts})
	return err
}

// Detach tears one remote pipeline down without broadcasting any event (the
// node's other pipelines are undisturbed), joins its threads, and frees its
// name — the teardown half of re-placing a segment onto another node.
func (c *Client) Detach(pipeline string) error {
	_, err := c.call(request{Op: "detach", Pipeline: pipeline})
	return err
}

// Stats snapshots the pump counters of every pipeline on the node whose
// name starts with prefix ("" = all) — remote telemetry over the §2.4
// control protocol.
func (c *Client) Stats(prefix string) ([]PipeStat, error) {
	resp, err := c.call(request{Op: "stats", Key: prefix})
	return resp.Stats, err
}

// Health fetches the node's liveness report (heartbeat).
func (c *Client) Health() (Health, error) {
	resp, err := c.call(request{Op: "health"})
	return resp.Health, err
}

// Caps fetches the event-capability sets of a remote pipeline, so a cluster
// deployer can run the graph-wide §2.3 check across segments on different
// nodes.
func (c *Client) Caps(pipeline string) (sends, handles []string, err error) {
	resp, err := c.call(request{Op: "caps", Pipeline: pipeline})
	return resp.Sends, resp.Handles, err
}

// Control invokes a node-side controller action (SetController) with
// parameters — the §2.4 extension behind cluster lane management: the graph
// support handles "listen" (pre-bind a rendezvous listener, returning its
// address), "drop" (close and forget one lane's state) and "redial" (point
// a stationary sender at a re-placed segment's new listener).
func (c *Client) Control(op string, params map[string]string) (string, error) {
	resp, err := c.call(request{Op: "ctl", Key: op, Params: params})
	return resp.Value, err
}

// Start broadcasts the start of a remote pipeline.
func (c *Client) Start(pipeline string) error {
	_, err := c.call(request{Op: "start", Pipeline: pipeline})
	return err
}

// Stop broadcasts the stop of a remote pipeline.
func (c *Client) Stop(pipeline string) error {
	_, err := c.call(request{Op: "stop", Pipeline: pipeline})
	return err
}

// QuerySpec fetches the resolved Typespec after stage idx of a remote
// pipeline (remote Typespec query, §2.4).
func (c *Client) QuerySpec(pipeline string, idx int) (typespec.Typespec, error) {
	resp, err := c.call(request{Op: "query", Pipeline: pipeline, StageIndex: idx})
	return resp.Spec, err
}

// SendEvent injects a control event into the remote node's bus (remote
// control-event delivery, §2.4).  Event data must be gob-encodable;
// register custom types with gob.Register.
func (c *Client) SendEvent(ev events.Event) error {
	_, err := c.call(request{Op: "event", Event: ev})
	return err
}

// Lookup queries a node-side key: "done:PIPELINE", "err:PIPELINE" and
// "sections:PIPELINE" are built in; anything else goes to the node's
// resolver (the graph support answers "addr:NAME" with the bound address
// of a listener it created).
func (c *Client) Lookup(key string) (string, error) {
	resp, err := c.call(request{Op: "lookup", Key: key})
	return resp.Value, err
}

// ForwardEvents subscribes to a local bus and forwards events accepted by
// filter to the remote node — the bridge that delivers feedback-sensor
// reports from consumer to producer nodes (§2.4, §3.1).  It returns the
// subscription for later removal.  Forwarded events keep their Origin, so
// a filter on Origin prevents reflection loops in bidirectional bridges.
func ForwardEvents(local *events.Bus, c *Client, filter func(events.Event) bool) events.Subscription {
	return local.SubscribeFunc(func(ev events.Event) {
		if filter != nil && !filter(ev) {
			return
		}
		_ = c.SendEvent(ev) // best-effort, like any control path
	})
}
