// Package remote implements the distribution support of §2.4 beyond data
// transport: protocols and factories for the creation of remote Infopipe
// components, remote Typespec queries, and delivery of control events to
// remote components through the platform.
//
// A Node hosts a scheduler, an event bus and a registry of component
// factories; it serves a small gob-encoded control protocol over TCP.  A
// Client composes pipelines from stage specifications on a remote node,
// starts and stops them, queries resolved Typespecs, and injects control
// events into the remote bus.
package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// StageSpec describes one stage of a remote pipeline: the factory kind,
// the stage name, positional arguments and key=value parameters.
type StageSpec struct {
	Kind   string
	Name   string
	Args   []string
	Params map[string]string
}

// Factory builds a stage from a spec.  Factories are registered per node.
type Factory func(name string, params map[string]string) (core.Stage, error)

// SpecFactory is the full-spec factory form: it sees the positional
// arguments too, as the graph deployer's specs carry them.  A kind may be
// registered as either form; SpecFactory wins.
type SpecFactory func(spec StageSpec) (core.Stage, error)

// ErrUnknownFactory is returned when a spec names an unregistered kind.
var ErrUnknownFactory = errors.New("remote: unknown component factory")

// ErrUnknownPipeline is returned for operations on unknown pipeline names.
var ErrUnknownPipeline = errors.New("remote: unknown pipeline")

// Node hosts remotely composable pipelines.
type Node struct {
	name  string
	sched *uthread.Scheduler
	bus   *events.Bus

	mu            sync.Mutex
	factories     map[string]Factory
	specFactories map[string]SpecFactory
	resolver      func(key string) (string, error)
	pipelines     map[string]*core.Pipeline
	ln            net.Listener
	closed        bool
	conns         map[net.Conn]struct{}
	wg            sync.WaitGroup
}

// NewNode creates a node over the given scheduler and bus.
func NewNode(name string, sched *uthread.Scheduler, bus *events.Bus) *Node {
	return &Node{
		name:          name,
		sched:         sched,
		bus:           bus,
		factories:     make(map[string]Factory),
		specFactories: make(map[string]SpecFactory),
		pipelines:     make(map[string]*core.Pipeline),
		conns:         make(map[net.Conn]struct{}),
	}
}

// Name returns the node name (the Typespec location of its pipelines).
func (n *Node) Name() string { return n.name }

// Bus returns the node's event bus.
func (n *Node) Bus() *events.Bus { return n.bus }

// Scheduler returns the node's scheduler.
func (n *Node) Scheduler() *uthread.Scheduler { return n.sched }

// RegisterFactory adds a component factory under kind.
func (n *Node) RegisterFactory(kind string, f Factory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.factories[kind] = f
}

// RegisterSpecFactory adds a full-spec component factory under kind.
func (n *Node) RegisterSpecFactory(kind string, f SpecFactory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.specFactories[kind] = f
}

// SetResolver installs the handler behind the lookup op for node-specific
// keys (the graph support registers listener addresses under "addr:NAME").
// Built-in keys ("done:PIPELINE", "err:PIPELINE") are answered before the
// resolver is consulted.
func (n *Node) SetResolver(r func(key string) (string, error)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resolver = r
}

// Pipeline returns a locally hosted pipeline by name.
func (n *Node) Pipeline(name string) (*core.Pipeline, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.pipelines[name]
	return p, ok
}

// PipelineNames lists the hosted pipelines.
func (n *Node) PipelineNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.pipelines))
	for name := range n.pipelines {
		out = append(out, name)
	}
	return out
}

// RemovePipeline forgets a hosted pipeline, freeing its name for a new
// composition (deployment rollback).  The pipeline itself is returned so
// the caller can stop it; removal does not stop it.
func (n *Node) RemovePipeline(name string) (*core.Pipeline, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.pipelines[name]
	delete(n.pipelines, name)
	return p, ok
}

// Serve starts the control server on addr ("host:0" picks a port) and
// returns the bound address.  The server runs until Close.
func (n *Node) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: node %s listen: %w", n.name, err)
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	// While serving, remote clients can compose and post at any time, so
	// the node's scheduler must idle rather than drain.
	n.sched.AddExternalSource()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// Close shuts the control server down and waits for connection handlers.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ln := n.ln
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
		n.sched.ReleaseExternalSource()
	}
	n.wg.Wait()
}

// Wire protocol.
type request struct {
	Op         string // compose | start | stop | query | event | lookup | ping
	Pipeline   string
	Stages     []StageSpec
	StageIndex int
	Event      events.Event
	Key        string // lookup key
	// SkipEventCheck composes without the per-pipeline §2.3 event-
	// capability check: graph deployments run that check graph-wide on
	// the deployer instead, since an event emitted in one segment may be
	// handled in another.
	SkipEventCheck bool
}

type response struct {
	Err   string
	Spec  typespec.Typespec
	Node  string
	Value string // lookup result
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := n.handle(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req request) response {
	switch req.Op {
	case "ping":
		return response{Node: n.name}
	case "compose":
		if err := n.compose(req.Pipeline, req.Stages, req.SkipEventCheck); err != nil {
			return response{Err: err.Error()}
		}
		return response{Node: n.name}
	case "start", "stop":
		p, ok := n.Pipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		if req.Op == "start" {
			p.Start()
		} else {
			p.Stop()
		}
		return response{}
	case "query":
		p, ok := n.Pipeline(req.Pipeline)
		if !ok {
			return response{Err: ErrUnknownPipeline.Error()}
		}
		return response{Spec: p.SpecAt(req.StageIndex), Node: n.name}
	case "event":
		n.bus.Broadcast(req.Event)
		return response{}
	case "lookup":
		v, err := n.lookup(req.Key)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Value: v, Node: n.name}
	default:
		return response{Err: fmt.Sprintf("remote: unknown op %q", req.Op)}
	}
}

// lookup answers the built-in keys and defers the rest to the resolver
// (§2.4 remote queries beyond Typespecs: liveness, errors, rendezvous
// addresses of graph deployments).
func (n *Node) lookup(key string) (string, error) {
	if name, ok := strings.CutPrefix(key, "done:"); ok {
		p, exists := n.Pipeline(name)
		if !exists {
			return "", fmt.Errorf("%w: %q", ErrUnknownPipeline, name)
		}
		select {
		case <-p.Done():
			return "true", nil
		default:
			return "false", nil
		}
	}
	if name, ok := strings.CutPrefix(key, "err:"); ok {
		p, exists := n.Pipeline(name)
		if !exists {
			return "", fmt.Errorf("%w: %q", ErrUnknownPipeline, name)
		}
		if err := p.Err(); err != nil {
			return err.Error(), nil
		}
		return "", nil
	}
	n.mu.Lock()
	r := n.resolver
	n.mu.Unlock()
	if r == nil {
		return "", fmt.Errorf("remote: no resolver for key %q", key)
	}
	return r(key)
}

// compose builds a pipeline from stage specs via the factory registry.
func (n *Node) compose(name string, specs []StageSpec, skipEventCheck bool) error {
	stages := make([]core.Stage, 0, len(specs))
	n.mu.Lock()
	factories := n.factories
	specFactories := n.specFactories
	n.mu.Unlock()
	for _, sp := range specs {
		if sf, ok := specFactories[sp.Kind]; ok {
			st, err := sf(sp)
			if err != nil {
				return fmt.Errorf("remote: factory %q: %w", sp.Kind, err)
			}
			stages = append(stages, st)
			continue
		}
		f, ok := factories[sp.Kind]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownFactory, sp.Kind)
		}
		st, err := f(sp.Name, sp.Params)
		if err != nil {
			return fmt.Errorf("remote: factory %q: %w", sp.Kind, err)
		}
		stages = append(stages, st)
	}
	var opts []core.ComposeOption
	if skipEventCheck {
		opts = append(opts, core.SkipEventCapabilityCheck())
	}
	p, err := core.Compose(name, n.sched, n.bus, stages, opts...)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pipelines == nil {
		n.pipelines = make(map[string]*core.Pipeline)
	}
	if _, dup := n.pipelines[name]; dup {
		return fmt.Errorf("remote: pipeline %q already exists", name)
	}
	n.pipelines[name] = p
	return nil
}

// Client drives a remote node.  Not safe for concurrent use; open one
// client per goroutine.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a node's control address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close releases the control connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req request) (response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("remote: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("remote: receive: %w", err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping checks liveness and returns the node name.
func (c *Client) Ping() (string, error) {
	resp, err := c.call(request{Op: "ping"})
	return resp.Node, err
}

// Compose creates a pipeline on the remote node from stage specs.
func (c *Client) Compose(pipeline string, stages []StageSpec) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages})
	return err
}

// ComposeSegment creates a pipeline that is one segment of a graph
// deployment: the per-pipeline §2.3 event-capability check is skipped,
// exactly as the local graph deployer skips it — an event emitted in one
// segment may be handled in another.
func (c *Client) ComposeSegment(pipeline string, stages []StageSpec) error {
	_, err := c.call(request{Op: "compose", Pipeline: pipeline, Stages: stages, SkipEventCheck: true})
	return err
}

// Start broadcasts the start of a remote pipeline.
func (c *Client) Start(pipeline string) error {
	_, err := c.call(request{Op: "start", Pipeline: pipeline})
	return err
}

// Stop broadcasts the stop of a remote pipeline.
func (c *Client) Stop(pipeline string) error {
	_, err := c.call(request{Op: "stop", Pipeline: pipeline})
	return err
}

// QuerySpec fetches the resolved Typespec after stage idx of a remote
// pipeline (remote Typespec query, §2.4).
func (c *Client) QuerySpec(pipeline string, idx int) (typespec.Typespec, error) {
	resp, err := c.call(request{Op: "query", Pipeline: pipeline, StageIndex: idx})
	return resp.Spec, err
}

// SendEvent injects a control event into the remote node's bus (remote
// control-event delivery, §2.4).  Event data must be gob-encodable;
// register custom types with gob.Register.
func (c *Client) SendEvent(ev events.Event) error {
	_, err := c.call(request{Op: "event", Event: ev})
	return err
}

// Lookup queries a node-side key: "done:PIPELINE" and "err:PIPELINE" are
// built in; anything else goes to the node's resolver (the graph support
// answers "addr:NAME" with the bound address of a listener it created).
func (c *Client) Lookup(key string) (string, error) {
	resp, err := c.call(request{Op: "lookup", Key: key})
	return resp.Value, err
}

// ForwardEvents subscribes to a local bus and forwards events accepted by
// filter to the remote node — the bridge that delivers feedback-sensor
// reports from consumer to producer nodes (§2.4, §3.1).  It returns the
// subscription for later removal.  Forwarded events keep their Origin, so
// a filter on Origin prevents reflection loops in bidirectional bridges.
func ForwardEvents(local *events.Bus, c *Client, filter func(events.Event) bool) events.Subscription {
	return local.SubscribeFunc(func(ev events.Event) {
		if filter != nil && !filter(ev) {
			return
		}
		_ = c.SendEvent(ev) // best-effort, like any control path
	})
}
