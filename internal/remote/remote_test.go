package remote_test

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/pipes"
	"infopipes/internal/remote"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// newTestNode builds a node with the standard factory set used by tests.
func newTestNode(t *testing.T, name string) (*remote.Node, *pipes.CollectSink, string) {
	t.Helper()
	sched := uthread.New(uthread.WithClock(vclock.Real{}))
	bus := &events.Bus{}
	node := remote.NewNode(name, sched, bus)
	sink := pipes.NewCollectSink("sink")
	node.RegisterFactory("counter-source", func(n string, params map[string]string) (core.Stage, error) {
		limit, err := strconv.ParseInt(params["limit"], 10, 64)
		if err != nil {
			return core.Stage{}, err
		}
		return core.Comp(pipes.NewCounterSource(n, limit)), nil
	})
	node.RegisterFactory("free-pump", func(n string, _ map[string]string) (core.Stage, error) {
		return core.Pmp(pipes.NewFreePump(n)), nil
	})
	node.RegisterFactory("collect-sink", func(n string, _ map[string]string) (core.Stage, error) {
		return core.Comp(sink), nil
	})
	addr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(node.Close)
	return node, sink, addr
}

func TestRemotePing(t *testing.T) {
	_, _, addr := newTestNode(t, "nodeA")
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	name, err := c.Ping()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if name != "nodeA" {
		t.Fatalf("ping name = %q, want nodeA", name)
	}
}

func TestRemoteComposeStartAndQuery(t *testing.T) {
	node, sink, addr := newTestNode(t, "nodeA")
	done := node.Scheduler().RunBackground()

	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	specs := []remote.StageSpec{
		{Kind: "counter-source", Name: "src", Params: map[string]string{"limit": "12"}},
		{Kind: "free-pump", Name: "pump"},
		{Kind: "collect-sink", Name: "sink"},
	}
	if err := c.Compose("player", specs); err != nil {
		t.Fatalf("remote compose: %v", err)
	}

	// Remote Typespec query (§2.4).
	spec, err := c.QuerySpec("player", 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if spec.ItemType != "test/counter" {
		t.Errorf("remote spec item type = %q, want test/counter", spec.ItemType)
	}

	if err := c.Start("player"); err != nil {
		t.Fatalf("start: %v", err)
	}
	p, ok := node.Pipeline("player")
	if !ok {
		t.Fatal("pipeline not registered on node")
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("remote pipeline did not finish")
	}
	if got := sink.Count(); got != 12 {
		t.Fatalf("sink received %d items, want 12", got)
	}
	node.Scheduler().Stop()
	<-done
}

func TestRemoteComposeUnknownFactory(t *testing.T) {
	_, _, addr := newTestNode(t, "nodeA")
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	err = c.Compose("x", []remote.StageSpec{{Kind: "nonsense", Name: "n"}})
	if err == nil {
		t.Fatal("compose with unknown factory succeeded")
	}
}

func TestRemoteUnknownPipelineOps(t *testing.T) {
	_, _, addr := newTestNode(t, "nodeA")
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Start("ghost"); err == nil {
		t.Error("start of unknown pipeline succeeded")
	}
	if _, err := c.QuerySpec("ghost", 0); err == nil {
		t.Error("query of unknown pipeline succeeded")
	}
}

func TestRemoteEventDelivery(t *testing.T) {
	// Control events are delivered to remote components through the
	// platform (§2.4): stop a remote pipeline via an injected event.
	node, sink, addr := newTestNode(t, "nodeA")
	done := node.Scheduler().RunBackground()
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	specs := []remote.StageSpec{
		{Kind: "counter-source", Name: "src", Params: map[string]string{"limit": "0"}}, // unbounded
		{Kind: "free-pump", Name: "pump"},
		{Kind: "collect-sink", Name: "sink"},
	}
	if err := c.Compose("endless", specs); err != nil {
		t.Fatalf("compose: %v", err)
	}
	if err := c.Start("endless"); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := c.SendEvent(events.Event{Type: events.Stop}); err != nil {
		t.Fatalf("send event: %v", err)
	}
	p, _ := node.Pipeline("endless")
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("remote stop event did not end the pipeline")
	}
	if sink.Count() == 0 {
		t.Error("pipeline never flowed before stop")
	}
	node.Scheduler().Stop()
	<-done
}

func TestForwardEventsBridge(t *testing.T) {
	node, _, addr := newTestNode(t, "nodeB")
	done := node.Scheduler().RunBackground()
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	local := &events.Bus{}
	received := make(chan events.Event, 4)
	node.Bus().SubscribeFunc(func(ev events.Event) { received <- ev })

	sub := remote.ForwardEvents(local, c, func(ev events.Event) bool {
		return ev.Type == events.QoSReport
	})
	defer local.Unsubscribe(sub)

	local.Broadcast(events.Event{Type: events.QoSReport, Origin: "sensor"})
	local.Broadcast(events.Event{Type: events.Resize}) // filtered out

	select {
	case ev := <-received:
		if ev.Type != events.QoSReport || ev.Origin != "sensor" {
			t.Fatalf("forwarded event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event not forwarded")
	}
	select {
	case ev := <-received:
		t.Fatalf("unexpected second event %+v (filter leaked)", ev)
	case <-time.After(50 * time.Millisecond):
	}
	node.Scheduler().Stop()
	if err := <-done; err != nil && !errors.Is(err, uthread.ErrDeadlock) {
		t.Fatalf("scheduler: %v", err)
	}
}

func TestTypespecGobRoundTripViaQuery(t *testing.T) {
	// QoS ranges with infinities survive the wire encoding.
	sched := uthread.New(uthread.WithClock(vclock.Real{}))
	node := remote.NewNode("nodeC", sched, &events.Bus{})
	node.RegisterFactory("spec-source", func(n string, _ map[string]string) (core.Stage, error) {
		spec := typespec.New("video/frames").
			WithQoS("rate", typespec.Between(10, 60)).
			WithQoS("latency", typespec.AtMost(0.5))
		return core.Comp(pipes.NewGeneratorSource(n, spec, 1, nil)), nil
	})
	node.RegisterFactory("free-pump", func(n string, _ map[string]string) (core.Stage, error) {
		return core.Pmp(pipes.NewFreePump(n)), nil
	})
	node.RegisterFactory("null-sink", func(n string, _ map[string]string) (core.Stage, error) {
		return core.Comp(pipes.NullSink(n)), nil
	})
	addr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer node.Close()
	c, err := remote.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Compose("q", []remote.StageSpec{
		{Kind: "spec-source", Name: "src"},
		{Kind: "free-pump", Name: "p"},
		{Kind: "null-sink", Name: "sink"},
	}); err != nil {
		t.Fatalf("compose: %v", err)
	}
	spec, err := c.QuerySpec("q", 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := spec.QoSRange("rate"); got.Lo != 10 || got.Hi != 60 {
		t.Errorf("rate range = %v", got)
	}
	if got := spec.QoSRange("latency"); got.Hi != 0.5 {
		t.Errorf("latency range = %v", got)
	}
	// An absent QoS key is unconstrained after the round trip too.
	if got := spec.QoSRange("jitter"); !got.ContainsRange(typespec.Between(-1e300, 1e300)) {
		t.Errorf("jitter range = %v, want unconstrained", got)
	}
	sched.Stop()
}
