package shard_test

import (
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/feedback"
	"infopipes/internal/pipes"
	"infopipes/internal/shard"
)

// TestCrossShardFeedback closes a feedback loop ACROSS shards (ROADMAP open
// item): the sensor lives on the consumer's shard — it reads the fill level
// of the cross-shard link — while the actuator drives the producer pump on
// another shard, by broadcasting rate-change control events over the shared
// bus.  The producer starts at 8x the consumer's rate; the controller must
// throttle it so the link depth stays bounded, and every item still
// arrives (backpressure never drops, the loop merely removes the blocking).
func TestCrossShardFeedback(t *testing.T) {
	const (
		items        = 300
		consumerRate = 50.0
		initialRate  = 400.0
	)
	g := shard.NewGroup(shard.WithShardCount(2))
	link := shard.NewLink("lane", g.Scheduler(1), 64)

	pump := pipes.NewAdaptivePump("pump", initialRate)
	producer, err := core.Compose("producer", g.Scheduler(0), nil, append([]core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pump),
	}, link.SenderStages("lane")...))
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	bus := producer.Bus()
	sink := pipes.NewCollectSink("sink")
	consumer, err := core.Compose("consumer", g.Scheduler(1), bus, append(
		link.ReceiverStages("lane"),
		core.Pmp(pipes.NewClockedPump("pump2", consumerRate)),
		core.Comp(sink),
	))
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}

	// Sensor on shard 1 (link depth), actuator on shard 0's pump, joined by
	// the shared bus: the control plane crosses shards as events (§2.4).
	sensor := feedback.SensorFunc(func(time.Time) float64 { return float64(link.Depth()) })
	controller := &feedback.PIController{
		Setpoint: 4, Kp: 12, Ki: 4, Min: 10, Max: initialRate, Bias: consumerRate,
	}
	actuator := feedback.ActuatorFunc(func(rate float64) {
		bus.Broadcast(events.Event{Type: events.RateChange, Target: "pump", Data: rate})
	})
	loop := feedback.NewLoop(g.Scheduler(1), bus, "xfeedback", 100*time.Millisecond,
		sensor, controller, actuator, feedback.StopOnEOS())

	producer.Start()
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	if err := producer.Err(); err != nil {
		t.Fatalf("producer: %v", err)
	}
	if err := consumer.Err(); err != nil {
		t.Fatalf("consumer: %v", err)
	}
	if sink.Count() != items {
		t.Fatalf("sink received %d items, want %d", sink.Count(), items)
	}
	if loop.Samples() == 0 {
		t.Fatal("feedback loop never sampled")
	}
	// The cross-shard loop must actually have throttled the producer.
	if rate := pump.Rate(); rate >= initialRate {
		t.Fatalf("producer pump still at %.0f Hz, feedback never reached it", rate)
	} else if rate > 3*consumerRate {
		t.Fatalf("producer pump at %.0f Hz, want near the %.0f Hz consumer", rate, consumerRate)
	}
}

// TestLinkBatchDrain: the receiver takes the whole queue per wake, so the
// number of drains is far below the number of items on a high-rate link.
func TestLinkBatchDrain(t *testing.T) {
	const items = 500
	g := shard.NewGroup(shard.WithShardCount(2))
	link := shard.NewLink("lane", g.Scheduler(1), 32)
	producer, err := core.Compose("producer", g.Scheduler(0), nil, append([]core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pipes.NewFreePump("pump")),
	}, link.SenderStages("lane")...))
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	if _, err := core.Compose("consumer", g.Scheduler(1), producer.Bus(), append(
		link.ReceiverStages("lane"),
		core.Pmp(pipes.NewFreePump("pump2")),
		core.Comp(sink),
	)); err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	producer.Start()
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	if sink.Count() != items {
		t.Fatalf("sink received %d items, want %d", sink.Count(), items)
	}
	if link.Moved() != items {
		t.Fatalf("moved %d, want %d", link.Moved(), items)
	}
	if d := link.Drains(); d == 0 || d >= items {
		t.Fatalf("drains = %d, want batched (0 < drains < %d)", d, items)
	}
}
