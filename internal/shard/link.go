package shard

import (
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/item"
	"infopipes/internal/typespec"
	"infopipes/internal/uthread"
)

// msgShardWake wakes a thread blocked on a shard link (either side).
const msgShardWake uthread.Kind = uthread.KindUserBase + 48

// Link is the in-process cross-shard netpipe: one pipeline's sink on shard A
// feeds another pipeline's source on shard B through a bounded item queue.
// It is inbox-based like the netpipe receiver, but zero-copy — items cross
// by reference, no marshalling — and bidirectionally blocking: a full queue
// blocks the sender (backpressure) and an empty queue blocks the receiver,
// both with control-event dispatch while blocked (§3.2), and both woken by a
// cross-scheduler Post (network packets mapped to messages, §4, applied to
// shard-local traffic).
//
// Like the network links it exposes SenderStages/ReceiverStages so the two
// pipelines compose through the existing external-source machinery; unlike
// them the stages contain no marshal filters.
type Link struct {
	name    string
	rxSched *uthread.Scheduler
	limit   int

	mu        sync.Mutex
	q         []*item.Item
	closed    bool
	released  bool
	rxWaiters core.WaiterList
	txWaiters core.WaiterList
	moved     int64 // items handed across, for diagnostics
	drains    int64 // batched queue handoffs, for diagnostics
	wakes     int64 // cross-scheduler wake posts (both directions)
	highWater int   // deepest the queue (incl. batch remainder) has been

	// batch holds the receiver's current drain: pop takes the WHOLE queue
	// in one handoff and serves items from the batch without waking senders
	// per item, so the cross-scheduler wake traffic is amortised over the
	// queue depth on high-rate links.  batchPos indexes the next item.
	batch    []*item.Item
	batchPos int
}

// NewLink creates a link delivering into rxSched.  queueLimit bounds the
// in-flight item queue (0 = 64, the buffer-ish default; senders block while
// full).  The receiving scheduler holds an external-source reference until
// the link closes, exactly like a netpipe receiver.
func NewLink(name string, rxSched *uthread.Scheduler, queueLimit int) *Link {
	if queueLimit <= 0 {
		queueLimit = 64
	}
	l := &Link{name: name, rxSched: rxSched, limit: queueLimit}
	rxSched.AddExternalSource()
	return l
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Depth reports the number of items currently queued, including items
// drained to the receiver's batch but not yet consumed (diagnostics and
// feedback sensors).
func (l *Link) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q) + (len(l.batch) - l.batchPos)
}

// Drains reports how many batched queue handoffs the receiver performed;
// Moved()/Drains() is the achieved batching factor.
func (l *Link) Drains() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.drains
}

// Moved reports the total number of items handed across the link.
func (l *Link) Moved() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.moved
}

// Wakes reports the number of cross-scheduler wake posts the link issued
// (receiver wakes on send plus sender wakes per drain round); Moved()/Wakes()
// approximates items per wake.
func (l *Link) Wakes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wakes
}

// HighWater reports the deepest the in-flight queue has been (including the
// receiver's unconsumed batch remainder) — the backpressure high-water mark.
func (l *Link) HighWater() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.highWater
}

// Closed reports whether the stream over the link has ended (sender EOS,
// stop, or Close).
func (l *Link) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Retarget moves the link's delivery to a new receiving scheduler: the
// rebalancer calls it after the old receiver pipeline detached and before
// the segment is recomposed on the new shard, so the external-source
// reference follows the receiver.  Queued items (and any unconsumed batch
// remainder) stay put — they are handed to the recomposed receiver in
// order.  No thread may be parked on the link when it is retargeted; a
// no-op on a closed link.
func (l *Link) Retarget(rxSched *uthread.Scheduler) {
	l.mu.Lock()
	old := l.rxSched
	if l.released || old == rxSched {
		l.mu.Unlock()
		return
	}
	l.rxSched = rxSched
	l.mu.Unlock()
	rxSched.AddExternalSource()
	old.ReleaseExternalSource()
}

// send hands one item across, blocking while the queue is full.  Called on a
// sender-shard thread.  Returns core.ErrStopped once the link is closed or
// the sender's section is stopping.
//
//ipvet:hotpath cross-shard handoff; every item over a link passes here
func (l *Link) send(ctx *core.Ctx, it *item.Item) error {
	t := ctx.Thread()
	// The receiver is woken at the sender's effective priority (the tenant
	// priority carried by the pump constraint, §4 inheritance): priority
	// crosses the link instead of the relay flattening it.  Default traffic
	// wakes at the protocol's usual PriorityHigh floor, unchanged.
	wakeAt := core.WakePrio(core.SenderPriority(t))
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return core.ErrStopped
		}
		// A detaching sender force-completes over the limit: the queue
		// outlives the sender's threads across a migration, so the item in
		// hand is enqueued rather than lost (bounded by one item per
		// blocked sender).
		if len(l.q) < l.limit || (ctx.Stopping() && ctx.Detaching()) {
			l.q = append(l.q, it)
			if depth := len(l.q) + (len(l.batch) - l.batchPos); depth > l.highWater {
				l.highWater = depth
			}
			w, ok := l.rxWaiters.PopFront()
			if ok {
				l.wakes++
			}
			l.mu.Unlock()
			if ok {
				w.WakeAt(msgShardWake, wakeAt)
			}
			return nil
		}
		if ctx.Stopping() {
			l.mu.Unlock()
			return core.ErrStopped
		}
		tok := l.txWaiters.Register(t)
		l.mu.Unlock()
		//ipvet:allow hotalloc queue-full park path; the thread blocks here, so the bound methods are not per-item cost
		if err := core.AwaitWake(t, msgShardWake, tok, ctx.Stopping, l.deregisterTx); err != nil {
			if ctx.Detaching() {
				continue // re-enter: the force-complete branch takes the item
			}
			return err
		}
	}
}

// pop removes the next item, blocking while the queue is empty.  Called on a
// receiver-shard thread.  Returns core.ErrEOS after close and drain.
//
// The receiver drains the whole queue per wake (ROADMAP batching item): the
// first pop after senders refilled the queue swaps the entire queue into the
// receiver's batch, wakes every blocked sender once, and subsequent pops
// serve from the batch — one wake round per queue depth instead of one
// cross-scheduler Post per item.
//
//ipvet:hotpath cross-shard drain; batch swap plus per-item serve
func (l *Link) pop(ctx *core.Ctx) (*item.Item, error) {
	t := ctx.Thread()
	for {
		l.mu.Lock()
		if l.batchPos < len(l.batch) {
			it := l.batch[l.batchPos]
			l.batch[l.batchPos] = nil
			l.batchPos++
			l.mu.Unlock()
			return it, nil
		}
		if len(l.q) > 0 {
			old := l.batch // fully consumed and nil'ed: reuse as the queue
			l.batch, l.batchPos = l.q, 0
			l.q = old[:0]
			l.moved += int64(len(l.batch))
			l.drains++
			waiters := l.txWaiters.TakeAll()
			l.wakes += int64(len(waiters))
			l.mu.Unlock()
			for _, w := range waiters {
				w.Wake(msgShardWake)
			}
			continue
		}
		if l.closed {
			l.mu.Unlock()
			return nil, core.ErrEOS
		}
		if ctx.Stopping() {
			l.mu.Unlock()
			return nil, core.ErrStopped
		}
		tok := l.rxWaiters.Register(t)
		l.mu.Unlock()
		//ipvet:allow hotalloc queue-empty park path; the thread blocks here, so the bound methods are not per-item cost
		if err := core.AwaitWake(t, msgShardWake, tok, ctx.Stopping, l.deregisterRx); err != nil {
			return nil, err
		}
	}
}

// deregisterRx and deregisterTx adapt the two waiter lists to the shared
// core.AwaitWake blocking protocol.  Tokens from the two lists cannot
// confuse a waiter: a thread can only be parked on one side at a time, and
// every wake is consumed before the thread can park again.
func (l *Link) deregisterRx(tok uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rxWaiters.Remove(tok)
}

func (l *Link) deregisterTx(tok uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.txWaiters.Remove(tok)
}

// Close marks end of stream and wakes both sides: blocked receivers drain
// the queue and then see EOS, blocked senders see ErrStopped.  Idempotent;
// normally driven by the sender pipeline's EOS or stop.
func (l *Link) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	waiters := append(l.rxWaiters.TakeAll(), l.txWaiters.TakeAll()...)
	release := !l.released
	l.released = true
	rxSched := l.rxSched
	l.mu.Unlock()
	for _, w := range waiters {
		w.Wake(msgShardWake)
	}
	if release {
		rxSched.ReleaseExternalSource()
	}
}

// NewSink returns the sender-side endpoint component (a consumer).
func (l *Link) NewSink(name string) core.Component {
	return &shardSink{Base: core.Base{CompName: name}, link: l}
}

type shardSink struct {
	core.Base
	link *Link
}

var (
	_ core.Consumer = (*shardSink)(nil)
	_ core.EOSSink  = (*shardSink)(nil)
)

// Style implements core.Component.
func (s *shardSink) Style() core.Style { return core.StyleConsumer }

// Push implements core.Consumer: zero-copy handoff, the very item flows on.
func (s *shardSink) Push(ctx *core.Ctx, it *item.Item) error {
	return s.link.send(ctx, it)
}

// HandleEOS implements core.EOSSink: end of the sender stream closes the
// link so the receiver pipeline can finish.
func (s *shardSink) HandleEOS(*core.Ctx) { s.link.Close() }

// HandleEvent implements core.Component: a stop on the sender side also ends
// the cross-shard stream.
func (s *shardSink) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		s.link.Close()
	}
}

// NewSource returns the receiver-side endpoint component (a producer).
func (l *Link) NewSource(name string) core.Component {
	return &shardSource{Base: core.Base{CompName: name}, link: l}
}

type shardSource struct {
	core.Base
	link *Link
}

var _ core.Producer = (*shardSource)(nil)

// Style implements core.Component.
func (s *shardSource) Style() core.Style { return core.StyleProducer }

// TransformSpec implements core.Component: crossing shards changes the
// location property (§2.4) — the item type is untouched, nothing was
// marshalled.
func (s *shardSource) TransformSpec(in typespec.Typespec) typespec.Typespec {
	out := in.Clone()
	out.Location = s.link.name
	return out
}

// HandleEvent implements core.Component: a stop on the RECEIVER side also
// tears the link down.  The two pipelines may live on separate buses, so
// the sender would otherwise never learn, block forever on a full queue,
// and hold the receiver shard's external-source reference — wedging the
// whole group (the netpipe receiver releases its reference when its reader
// exits; this is the in-process equivalent).
func (s *shardSource) HandleEvent(_ *core.Ctx, ev events.Event) {
	if ev.Type == events.Stop {
		s.link.Close()
	}
}

// Pull implements core.Producer.
func (s *shardSource) Pull(ctx *core.Ctx) (*item.Item, error) {
	return s.link.pop(ctx)
}

// SenderStages returns the canonical sender-side tail for this link — just
// the sink: items cross in process, so there is nothing to marshal.
func (l *Link) SenderStages(name string) []core.Stage {
	return []core.Stage{core.Comp(l.NewSink(name + "/sink"))}
}

// ReceiverStages returns the canonical receiver-side head for this link —
// just the source, for the same zero-copy reason.
func (l *Link) ReceiverStages(name string) []core.Stage {
	return []core.Stage{core.Comp(l.NewSource(name + "/source"))}
}
