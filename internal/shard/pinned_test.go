package shard_test

import (
	"testing"

	"infopipes/internal/core"
	"infopipes/internal/pipes"
	"infopipes/internal/shard"
)

// TestPinnedGroupRunsFarm: WithPinnedShards locks each shard's Run loop to
// an OS thread; the farm must behave exactly as unpinned — every item
// delivered, Pinned reported.
func TestPinnedGroupRunsFarm(t *testing.T) {
	const pipelines, items = 4, 500
	g := shard.NewGroup(shard.WithShardCount(2), shard.WithRealClock(), shard.WithPinnedShards())
	if !g.Pinned() {
		t.Fatal("Pinned() = false on a pinned group")
	}
	sinks := make([]*pipes.CollectSink, pipelines)
	for i := 0; i < pipelines; i++ {
		sinks[i] = pipes.NewCollectSink("sink")
		p, err := g.Compose("farm", nil, []core.Stage{
			core.Comp(pipes.NewCounterSource("src", items)),
			core.Pmp(pipes.NewFreePump("pump")),
			core.Comp(sinks[i]),
		})
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
		p.Start()
	}
	if err := g.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, s := range sinks {
		if s.Count() != items {
			t.Fatalf("pipeline %d delivered %d items, want %d", i, s.Count(), items)
		}
	}
}
