// Package shard implements the multi-core sharded runtime: a SchedulerGroup
// owns N uthread schedulers ("shards"), runs each on its own goroutine (the
// Go runtime spreads them across OS threads and cores), places whole
// pipelines onto shards, and joins their lifecycles.
//
// The paper's thread package is deliberately uniprocessor — one run token,
// one scheduler — which preserves thread transparency for the components but
// caps the middleware at a single core.  Sharding keeps that contract
// per-scheduler: every pipeline still lives entirely inside one uniprocessor
// scheduler, so components never see concurrency; only whole pipelines are
// distributed, the same separation of application logic from placement
// policy that distribution middleware argues for.  Cross-shard flow uses
// Link — an in-process, zero-copy netpipe (no marshalling), with the same
// SenderStages/ReceiverStages composition surface as the network links.
//
// Time: by default the shards share one coordinated virtual clock
// (vclock.GroupVirtual), so a multi-shard simulation is a deterministic
// distributed discrete-event simulation — global time only advances to the
// minimum pending deadline once every shard is idle.  WithRealClock selects
// the wall clock for throughput farms and interactive work.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"infopipes/internal/core"
	"infopipes/internal/events"
	"infopipes/internal/uthread"
	"infopipes/internal/vclock"
)

// Policy selects how Place assigns pipelines to shards.
type Policy int

const (
	// RoundRobin cycles through the shards in order.
	RoundRobin Policy = iota
	// LeastLoaded picks the shard currently hosting the fewest pipelines
	// (finished pipelines are deducted as they complete).
	LeastLoaded
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "unknown"
	}
}

// Option configures a Group.
type Option func(*config)

type config struct {
	shards int
	policy Policy
	real   bool
	pinned bool
}

// WithShardCount sets the number of shards (default runtime.NumCPU()).
func WithShardCount(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithPolicy selects the placement policy (default RoundRobin).
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithRealClock runs every shard on the wall clock instead of the
// coordinated shared virtual clock.
func WithRealClock() Option {
	return func(c *config) { c.real = true }
}

// WithPinnedShards wires each shard's Run loop to its own OS thread
// (runtime.LockOSThread): the Go scheduler stops migrating shard goroutines
// between threads, so the kernel can keep each shard's working set warm on
// one core — the first step of NUMA/CPU placement for large hosts.  The
// uthreads inside a shard are unaffected (they already live on the shard's
// single goroutine); this pins that goroutine itself.
func WithPinnedShards() Option {
	return func(c *config) { c.pinned = true }
}

// Group is the sharded runtime: N schedulers with a shared time base, a
// placement policy, and a joined lifecycle.  Construct with NewGroup, place
// pipelines with Compose (or Place + core.Compose), then Run.
type Group struct {
	shards []*uthread.Scheduler
	group  *vclock.GroupVirtual // nil on the real clock
	policy Policy
	pinned bool

	mu      sync.Mutex
	load    []int // pipelines currently placed per shard
	next    int   // round-robin cursor
	started bool
	err     error
	done    chan struct{} // closed once every shard's Run has returned
}

// NewGroup creates a sharded runtime.  By default it owns runtime.NumCPU()
// shards coordinated on one shared virtual clock.
func NewGroup(opts ...Option) *Group {
	cfg := config{shards: runtime.NumCPU(), policy: RoundRobin}
	for _, opt := range opts {
		opt(&cfg)
	}
	g := &Group{policy: cfg.policy, pinned: cfg.pinned, load: make([]int, cfg.shards), done: make(chan struct{})}
	if !cfg.real {
		g.group = vclock.NewGroupVirtual()
	}
	for i := 0; i < cfg.shards; i++ {
		var clk vclock.Clock
		if g.group != nil {
			clk = g.group.Member()
		} else {
			clk = vclock.Real{}
		}
		g.shards = append(g.shards, uthread.New(uthread.WithClock(clk)))
	}
	return g
}

// Shards reports the number of shards.
func (g *Group) Shards() int { return len(g.shards) }

// Scheduler returns shard i's scheduler, for explicit placement and for
// wiring cross-shard links.
func (g *Group) Scheduler(i int) *uthread.Scheduler { return g.shards[i] }

// Clock returns the coordinated shared virtual clock, or nil when the group
// runs on the real clock.
func (g *Group) Clock() *vclock.GroupVirtual { return g.group }

// Place picks a shard for the next pipeline according to the placement
// policy and returns its index.  The load accounting assumes the caller
// composes one pipeline on the returned shard; prefer Compose, which does
// both in one step.
func (g *Group) Place() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.placeLocked()
}

// PlaceAt records the explicit placement of one pipeline on shard i — load
// accounting for callers (the graph deployer) that pick the shard
// themselves, from hints rather than the policy.  Pair with Release when
// the pipeline finishes.
func (g *Group) PlaceAt(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.load[i]++
}

// Release undoes one Place/PlaceAt accounting entry for shard i.
func (g *Group) Release(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.load[i]--
}

func (g *Group) placeLocked() int {
	idx := 0
	switch g.policy {
	case LeastLoaded:
		for i := 1; i < len(g.load); i++ {
			if g.load[i] < g.load[idx] {
				idx = i
			}
		}
	default: // RoundRobin
		idx = g.next % len(g.shards)
		g.next++
	}
	g.load[idx]++
	return idx
}

// Compose places a whole pipeline onto one shard (chosen by the placement
// policy) and composes it there.  The pipeline's components run exactly as
// on a single-scheduler runtime — thread transparency is per shard.  bus may
// be nil for a pipeline-private event service.  The shard's load count is
// released when the pipeline finishes.
func (g *Group) Compose(name string, bus *events.Bus, stages []core.Stage, opts ...core.ComposeOption) (*core.Pipeline, error) {
	g.mu.Lock()
	idx := g.placeLocked()
	g.mu.Unlock()
	p, err := core.Compose(name, g.shards[idx], bus, stages, opts...)
	if err != nil {
		g.mu.Lock()
		g.load[idx]--
		g.mu.Unlock()
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	go func() {
		<-p.Done()
		g.mu.Lock()
		g.load[idx]--
		g.mu.Unlock()
	}()
	return p, nil
}

// Loads reports the number of live pipelines per shard (diagnostics and
// placement tests).
func (g *Group) Loads() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, len(g.load))
	copy(out, g.load)
	return out
}

// Start launches every shard's scheduler on its own goroutine, plus one
// collector that joins them, records the first failure, and stops the rest
// of the group on failure (a farm with a dead shard is broken, not
// degraded).  Idempotent.  Place pipelines before starting, exactly as with
// a single scheduler.
func (g *Group) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	errcs := make([]<-chan error, 0, len(g.shards))
	for _, s := range g.shards {
		errc := make(chan error, 1)
		go func(s *uthread.Scheduler) {
			if g.pinned {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			errc <- s.Run()
		}(s)
		errcs = append(errcs, errc)
	}
	g.mu.Unlock()
	go g.collect(errcs)
}

// Pinned reports whether shard Run loops are locked to OS threads.
func (g *Group) Pinned() bool { return g.pinned }

// collect joins every shard exactly once and latches the result, so Wait
// may be called any number of times, from any number of goroutines.
func (g *Group) collect(errcs []<-chan error) {
	var wg sync.WaitGroup
	var once sync.Once
	var first error
	for _, ch := range errcs {
		wg.Add(1)
		go func(ch <-chan error) {
			defer wg.Done()
			if err := <-ch; err != nil {
				once.Do(func() {
					first = err
					g.Stop()
				})
			}
		}(ch)
	}
	wg.Wait()
	g.mu.Lock()
	if g.err == nil {
		g.err = first
	}
	g.mu.Unlock()
	close(g.done)
}

// Wait blocks until every shard's Run has returned and reports the first
// failure.  It starts the group if Start has not run yet, and may be called
// repeatedly — the result is latched.
func (g *Group) Wait() error {
	g.Start()
	<-g.done
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Run starts every shard and waits for all of them: the multi-shard
// equivalent of Scheduler.Run.
func (g *Group) Run() error {
	g.Start()
	return g.Wait()
}

// Stop shuts every shard down.  Safe from any goroutine, idempotent.
func (g *Group) Stop() {
	for _, s := range g.shards {
		s.Stop()
	}
}

// Err reports the first failure recorded by any shard, or nil.
func (g *Group) Err() error {
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return err
	}
	g.mu.Unlock()
	for _, s := range g.shards {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the group's activity counters summed across shards.
func (g *Group) Stats() uthread.Stats {
	var agg uthread.Stats
	for _, s := range g.shards {
		st := s.Stats()
		agg.Switches += st.Switches
		agg.Grants += st.Grants
		agg.Messages += st.Messages
		agg.Timers += st.Timers
	}
	return agg
}

// ShardStats returns per-shard activity counters (diagnostics).
func (g *Group) ShardStats() []uthread.Stats {
	out := make([]uthread.Stats, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.Stats()
	}
	return out
}
