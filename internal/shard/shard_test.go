package shard_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"infopipes/internal/core"
	"infopipes/internal/pipes"
	"infopipes/internal/shard"
	"infopipes/internal/uthread"
)

func TestPlacementPolicies(t *testing.T) {
	rr := shard.NewGroup(shard.WithShardCount(3), shard.WithPolicy(shard.RoundRobin))
	var got []int
	for i := 0; i < 5; i++ {
		got = append(got, rr.Place())
	}
	if want := []int{0, 1, 2, 0, 1}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("round-robin placements = %v, want %v", got, want)
	}

	ll := shard.NewGroup(shard.WithShardCount(3), shard.WithPolicy(shard.LeastLoaded))
	got = nil
	for i := 0; i < 4; i++ {
		got = append(got, ll.Place())
	}
	if want := []int{0, 1, 2, 0}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("least-loaded placements = %v, want %v", got, want)
	}
	if loads := ll.Loads(); loads[0] != 2 || loads[1] != 1 || loads[2] != 1 {
		t.Fatalf("loads = %v, want [2 1 1]", loads)
	}
}

// TestGroupRunsPipelinesAcrossShards places four clocked pipelines on two
// shards sharing the coordinated virtual clock and runs them to completion:
// the multi-scheduler discrete-event simulation must deliver every item.
func TestGroupRunsPipelinesAcrossShards(t *testing.T) {
	const pipelines, items = 4, 50
	g := shard.NewGroup(shard.WithShardCount(2))
	sinks := make([]*pipes.CollectSink, pipelines)
	ps := make([]*core.Pipeline, pipelines)
	for i := range sinks {
		sinks[i] = pipes.NewCollectSink(fmt.Sprintf("sink%d", i))
		p, err := g.Compose(fmt.Sprintf("p%d", i), nil, []core.Stage{
			core.Comp(pipes.NewCounterSource("src", items)),
			core.Pmp(pipes.NewClockedPump("pump", 100+float64(10*i))),
			core.Comp(sinks[i]),
		})
		if err != nil {
			t.Fatalf("compose %d: %v", i, err)
		}
		ps[i] = p
	}
	if loads := g.Loads(); loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("loads = %v, want [2 2]", loads)
	}
	for _, p := range ps {
		p.Start()
	}
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	// The result is latched: Wait may be called again after Run.
	if err := g.Wait(); err != nil {
		t.Fatalf("second Wait: %v", err)
	}
	for i, s := range sinks {
		if s.Count() != items {
			t.Fatalf("sink %d received %d items, want %d", i, s.Count(), items)
		}
	}
	if st := g.Stats(); st.Timers == 0 || st.Messages == 0 {
		t.Fatalf("aggregated stats look dead: %+v", st)
	}
	// The load release runs on a per-pipeline watcher goroutine; give it a
	// moment after Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		loads := g.Loads()
		if loads[0] == 0 && loads[1] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loads = %v after completion, want [0 0]", loads)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrossShardLink feeds a producer pipeline on shard 0 into a consumer
// pipeline on shard 1 through the zero-copy link, on the coordinated clock.
func TestCrossShardLink(t *testing.T) {
	const items = 100
	g := shard.NewGroup(shard.WithShardCount(2))
	link := shard.NewLink("xshard", g.Scheduler(1), 16)

	producer, err := core.Compose("producer", g.Scheduler(0), nil, append([]core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pipes.NewFreePump("pump")),
	}, link.SenderStages("xshard")...))
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	consumer, err := core.Compose("consumer", g.Scheduler(1), producer.Bus(), append(
		link.ReceiverStages("xshard"),
		core.Pmp(pipes.NewFreePump("pump2")),
		core.Comp(sink),
	))
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	// The link changes the location property at the crossing (§2.4).
	if spec := consumer.SpecAt(0); spec.Location != "xshard" {
		t.Fatalf("location after link = %q, want %q", spec.Location, "xshard")
	}
	producer.Start()
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	if err := producer.Err(); err != nil {
		t.Fatalf("producer: %v", err)
	}
	if err := consumer.Err(); err != nil {
		t.Fatalf("consumer: %v", err)
	}
	if sink.Count() != items {
		t.Fatalf("sink received %d items, want %d", sink.Count(), items)
	}
	if link.Moved() != items {
		t.Fatalf("link moved %d items, want %d", link.Moved(), items)
	}
	// Zero-copy and in order: payloads arrive exactly as sent (the counter
	// source numbers items from 1).
	for i, it := range sink.Items() {
		if seq, ok := it.Payload.(int64); !ok || seq != int64(i+1) {
			t.Fatalf("item %d payload = %v, want %d (reordered or copied)", i, it.Payload, i+1)
		}
	}
}

// TestCrossShardLinkBackpressure bounds the link at 2 items with a slow
// clocked consumer: the fast producer must block, not drop, so every item
// still arrives.
func TestCrossShardLinkBackpressure(t *testing.T) {
	const items = 40
	g := shard.NewGroup(shard.WithShardCount(2))
	link := shard.NewLink("narrow", g.Scheduler(1), 2)

	producer, err := core.Compose("producer", g.Scheduler(0), nil, append([]core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pipes.NewFreePump("pump")),
	}, link.SenderStages("narrow")...))
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	consumer, err := core.Compose("consumer", g.Scheduler(1), producer.Bus(), append(
		link.ReceiverStages("narrow"),
		core.Pmp(pipes.NewClockedPump("pump2", 200)),
		core.Comp(sink),
	))
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	producer.Start()
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	if err := consumer.Err(); err != nil {
		t.Fatalf("consumer: %v", err)
	}
	if sink.Count() != items {
		t.Fatalf("sink received %d items, want %d (backpressure dropped items)", sink.Count(), items)
	}
}

// TestReceiverStopClosesLink: the consumer pipeline stopping (on its OWN
// bus — the producer never hears the event) must tear the link down, so the
// blocked producer unblocks with ErrStopped and the receiver shard's
// external-source reference is released.  Without the receiver-side close
// the whole group wedges in Wait.
func TestReceiverStopClosesLink(t *testing.T) {
	const items = 1000
	g := shard.NewGroup(shard.WithShardCount(2))
	link := shard.NewLink("stopped-lane", g.Scheduler(1), 4)

	producer, err := core.Compose("producer", g.Scheduler(0), nil, append([]core.Stage{
		core.Comp(pipes.NewCounterSource("src", items)),
		core.Pmp(pipes.NewFreePump("pump")),
	}, link.SenderStages("stopped-lane")...))
	if err != nil {
		t.Fatalf("compose producer: %v", err)
	}
	sink := pipes.NewCollectSink("sink")
	// Deliberately a separate bus: the producer cannot see consumer events.
	consumer, err := core.Compose("consumer", g.Scheduler(1), nil, append(
		link.ReceiverStages("stopped-lane"),
		core.Pmp(pipes.NewClockedPump("pump2", 50)),
		core.Comp(sink),
	))
	if err != nil {
		t.Fatalf("compose consumer: %v", err)
	}
	// Stop the consumer after 100 simulated ms (~5 items at 50 Hz), from a
	// helper thread on the consumer's shard.
	helper := g.Scheduler(1).Spawn("stopper", uthread.PriorityNormal,
		func(th *uthread.Thread, m uthread.Message) uthread.Disposition {
			th.SleepFor(100 * time.Millisecond)
			consumer.Stop()
			return uthread.Terminate
		})
	g.Scheduler(1).Post(helper, uthread.Message{Kind: uthread.KindUserBase + 78})

	producer.Start()
	consumer.Start()
	done := make(chan error, 1)
	go func() { done <- g.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("group run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("group wedged: receiver-side stop did not close the link")
	}
	if err := producer.Err(); err != nil {
		t.Fatalf("producer: %v", err)
	}
	if got := sink.Count(); got == 0 || got >= items {
		t.Fatalf("sink received %d items, want some but fewer than %d", got, items)
	}
}

// TestGroupStopsAllShardsOnFailure: one shard's scheduler failing (a
// panicking thread) brings the whole farm down instead of wedging Wait.
func TestGroupStopsAllShardsOnFailure(t *testing.T) {
	g := shard.NewGroup(shard.WithShardCount(2), shard.WithRealClock())
	// Shard 1 would idle forever: it holds an external-source reference.
	g.Scheduler(1).AddExternalSource()
	boom := g.Scheduler(0).Spawn("boom", uthread.PriorityNormal,
		func(*uthread.Thread, uthread.Message) uthread.Disposition {
			panic("shard 0 exploded")
		})
	g.Scheduler(0).Post(boom, uthread.Message{Kind: uthread.KindUserBase + 77})

	done := make(chan error, 1)
	go func() { done <- g.Run() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("group run = %v, want panic error", err)
		}
		if g.Err() == nil {
			t.Fatal("group Err() = nil after failure")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("group Wait wedged on the surviving shard")
	}
}
