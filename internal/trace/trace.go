// Package trace provides the lightweight instrumentation used by the
// Infopipe runtime and by the experiment harness: monotonic counters
// (context switches, direct calls, drops), latency/jitter statistics, and
// throughput meters.  All types are safe for concurrent use.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter.
// The zero value is ready to use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta to the counter.  Negative deltas are ignored so that the
// counter remains monotonic.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n.Add(delta)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset returns the counter to zero.  Intended for benchmark loops that
// measure deltas between phases.
func (c *Counter) Reset() { c.n.Store(0) }

// Gauge is a settable instantaneous value (e.g. buffer fill level).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Series accumulates a stream of sampled values and computes summary
// statistics.  The zero value is ready to use.
type Series struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
}

// Observe records one sample.
func (s *Series) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		s.min, s.max = v, v
	} else {
		s.min = math.Min(s.min, v)
		s.max = math.Max(s.max, v)
	}
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
}

// ObserveDuration records a duration sample in seconds.
func (s *Series) ObserveDuration(d time.Duration) {
	s.Observe(d.Seconds())
}

// Count reports the number of samples observed.
func (s *Series) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean reports the arithmetic mean of the samples, or 0 with no samples.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// StdDev reports the population standard deviation, or 0 with <2 samples.
func (s *Series) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	variance := s.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return math.Sqrt(variance)
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max reports the largest sample, or 0 with no samples.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Percentile reports the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy, or 0 with no samples.
func (s *Series) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.samples))
	copy(sorted, s.samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Jitter reports the mean absolute difference between consecutive samples.
// This is the inter-arrival jitter metric used by the display sink (E10).
func (s *Series) Jitter() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) < 2 {
		return 0
	}
	var total float64
	for i := 1; i < len(s.samples); i++ {
		total += math.Abs(s.samples[i] - s.samples[i-1])
	}
	return total / float64(len(s.samples)-1)
}

// Snapshot returns a copy of the raw samples.
func (s *Series) Snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Reset discards all samples.
func (s *Series) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = s.samples[:0]
	s.sum, s.sumSq, s.min, s.max = 0, 0, 0, 0
}

// String summarises the series for experiment reports.
func (s *Series) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.Count(), s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Meter measures event throughput over a time base supplied by the caller
// (virtual or real).  The zero value is not usable; construct with NewMeter.
type Meter struct {
	mu    sync.Mutex
	start time.Time
	last  time.Time
	count int64
}

// NewMeter returns a meter anchored at start.
func NewMeter(start time.Time) *Meter {
	return &Meter{start: start, last: start}
}

// Mark records one event at instant now.
func (m *Meter) Mark(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count++
	if now.After(m.last) {
		m.last = now
	}
}

// Count reports the number of events recorded.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Rate reports events per second between the anchor and the last mark,
// or 0 if no time has passed.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := m.last.Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}
