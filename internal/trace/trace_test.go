package trace

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d", got)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %g, want 2", got)
	}
	if got := s.Min(); got != 2 {
		t.Fatalf("Min = %g, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Fatalf("Max = %g, want 9", got)
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {50, 50}, {95, 95}, {100, 100}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestSeriesJitter(t *testing.T) {
	var s Series
	// Perfectly periodic: jitter 0.
	for i := 0; i < 5; i++ {
		s.Observe(1.0)
	}
	if got := s.Jitter(); got != 0 {
		t.Fatalf("Jitter = %g, want 0", got)
	}
	s.Reset()
	s.Observe(1)
	s.Observe(3)
	s.Observe(1)
	if got := s.Jitter(); got != 2 {
		t.Fatalf("Jitter = %g, want 2", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 || s.Jitter() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestSeriesObserveDurationAndString(t *testing.T) {
	var s Series
	s.ObserveDuration(250 * time.Millisecond)
	if got := s.Mean(); got != 0.25 {
		t.Fatalf("Mean = %g, want 0.25", got)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
	if got := s.Snapshot(); len(got) != 1 || got[0] != 0.25 {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestMeter(t *testing.T) {
	start := time.Unix(0, 0)
	m := NewMeter(start)
	for i := 1; i <= 10; i++ {
		m.Mark(start.Add(time.Duration(i) * time.Second))
	}
	if got := m.Count(); got != 10 {
		t.Fatalf("Count = %d", got)
	}
	if got := m.Rate(); got != 1.0 {
		t.Fatalf("Rate = %g, want 1.0", got)
	}
}

func TestMeterNoTime(t *testing.T) {
	m := NewMeter(time.Unix(0, 0))
	m.Mark(time.Unix(0, 0))
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate = %g, want 0 when no time elapsed", got)
	}
}
