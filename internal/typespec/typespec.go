// Package typespec implements the Typespec of §2.3: the extensible
// description of an information flow that each Infopipe port exposes and
// transforms.  A Typespec covers the item type, the activity (polarity) of
// ports, blocking behaviour, control-event capabilities, QoS parameter
// ranges, and the location property that only netpipes change (§2.4).
//
// Typespecs are incremental: a stage does not carry one fixed Typespec but
// transforms the Typespec at one port into Typespecs at its other ports.
// Undefined properties mean "don't know" on the producing side and "don't
// care" on the consuming side, so compatibility checking constrains only
// properties defined on both sides.
package typespec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Polarity is the activity of a port (§2.3).  A positive out-port makes
// calls to push; a negative out-port has the ability to receive a pull.
// A positive in-port makes calls to pull; a negative in-port is willing to
// receive a push.  Poly is the polymorphic polarity α→α of components such
// as filters that operate in either mode.
type Polarity int

const (
	// Negative marks a passive port (receives push or pull).
	Negative Polarity = iota + 1
	// Positive marks an active port (makes push or pull calls).
	Positive
	// Poly marks a polymorphic port that acquires an induced polarity
	// when its peer (or the component's other end) is fixed.
	Poly
)

// String returns the conventional sign notation.
func (p Polarity) String() string {
	switch p {
	case Negative:
		return "-"
	case Positive:
		return "+"
	case Poly:
		return "α"
	default:
		return fmt.Sprintf("Polarity(%d)", int(p))
	}
}

// Opposite returns the polarity a peer port must have.  The opposite of
// Poly is Poly (the pair stays polymorphic until fixed elsewhere).
func (p Polarity) Opposite() Polarity {
	switch p {
	case Negative:
		return Positive
	case Positive:
		return Negative
	default:
		return Poly
	}
}

// ErrPolarityClash is returned when two ports of the same fixed polarity are
// connected ("an attempt to connect two ports with the same polarity is an
// error", §2.3).
var ErrPolarityClash = errors.New("typespec: polarity clash")

// ConnectPolarity checks that an out-port of polarity out may be joined to
// an in-port of polarity in, and returns the resolved polarity of the
// connection: Positive means data is pushed across it, Negative means data
// is pulled across it, Poly means still undetermined (both sides α).
func ConnectPolarity(out, in Polarity) (Polarity, error) {
	switch {
	case out == Poly && in == Poly:
		return Poly, nil
	case out == Poly:
		return in.Opposite(), nil
	case in == Poly:
		return out, nil
	case out == in:
		return 0, fmt.Errorf("%w: out-port %v vs in-port %v", ErrPolarityClash, out, in)
	default:
		// out Positive + in Negative = push connection (Positive);
		// out Negative + in Positive = pull connection (Negative).
		return out, nil
	}
}

// BlockPolicy is the blocking behaviour of a data operation that cannot
// complete immediately (§2.3): a push into a full buffer either blocks or
// drops the item; a pull from an empty buffer either blocks or returns the
// nil item.
type BlockPolicy int

const (
	// Block suspends the caller until the operation can proceed.
	Block BlockPolicy = iota + 1
	// NonBlock drops the pushed item / returns a nil item on pull.
	NonBlock
)

// String names the policy.
func (b BlockPolicy) String() string {
	switch b {
	case Block:
		return "block"
	case NonBlock:
		return "nonblock"
	default:
		return fmt.Sprintf("BlockPolicy(%d)", int(b))
	}
}

// ParseBlockPolicy parses the textual form used by the microlanguage and
// graph specs: "block" suspends the caller; "drop", "nonblock" and "nil"
// (after the §2.3 nil item) all name the non-blocking behaviour.
func ParseBlockPolicy(s string) (BlockPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop", "nonblock", "nil":
		return NonBlock, nil
	default:
		return 0, fmt.Errorf("typespec: unknown blocking policy %q (want block or drop)", s)
	}
}

// Range is a closed interval of a QoS parameter (frame rate, latency,
// bandwidth...).  The zero value is the unconstrained full range.
type Range struct {
	Lo, Hi float64
}

// FullRange is the unconstrained range.
var FullRange = Range{Lo: math.Inf(-1), Hi: math.Inf(1)}

// normalised widens a zero-valued Range to FullRange, so that the zero
// value means "don't care".
func (r Range) normalised() Range {
	if r == (Range{}) {
		return FullRange
	}
	return r
}

// Exactly returns the degenerate range [v, v].
func Exactly(v float64) Range { return Range{Lo: v, Hi: v} }

// AtLeast returns the range [v, +inf).
func AtLeast(v float64) Range { return Range{Lo: v, Hi: math.Inf(1)} }

// AtMost returns the range (-inf, v].
func AtMost(v float64) Range { return Range{Lo: math.Inf(-1), Hi: v} }

// Between returns the range [lo, hi].
func Between(lo, hi float64) Range { return Range{Lo: lo, Hi: hi} }

// Empty reports whether the range contains no values.
func (r Range) Empty() bool {
	n := r.normalised()
	return n.Lo > n.Hi
}

// Contains reports whether v lies in the range.
func (r Range) Contains(v float64) bool {
	n := r.normalised()
	return v >= n.Lo && v <= n.Hi
}

// ContainsRange reports whether other lies entirely within r.
func (r Range) ContainsRange(other Range) bool {
	a, b := r.normalised(), other.normalised()
	return a.Lo <= b.Lo && b.Hi <= a.Hi
}

// Intersect returns the overlap of the two ranges (possibly empty).
func (r Range) Intersect(other Range) Range {
	a, b := r.normalised(), other.normalised()
	return Range{Lo: math.Max(a.Lo, b.Lo), Hi: math.Min(a.Hi, b.Hi)}
}

// String renders the range.
func (r Range) String() string {
	n := r.normalised()
	return fmt.Sprintf("[%g, %g]", n.Lo, n.Hi)
}

// Typespec describes the properties of an information flow at one port.
// The zero value is the fully undefined spec ("don't know / don't care").
type Typespec struct {
	// ItemType names the format of the information items ("video/frames",
	// "bytes", "midi/events"...).  Empty means undefined.
	ItemType string
	// PushPolicy and PullPolicy give the blocking behaviour (§2.3).
	// Zero means undefined.
	PushPolicy BlockPolicy
	PullPolicy BlockPolicy
	// QoS maps parameter names ("rate", "latency", "jitter", "bandwidth",
	// "width", "height"...) to supported ranges.  Absent keys are
	// unconstrained.
	QoS map[string]Range
	// Props holds extensible discrete properties (codec name, byte order,
	// colour space...).  Absent keys are undefined.
	Props map[string]string
	// SendsEvents and HandlesEvents list the control-event types the
	// component emits and reacts to (§2.3): included so composition can
	// check that the resulting pipeline is operational.
	SendsEvents   []string
	HandlesEvents []string
	// Location identifies the node the flow lives on.  Only netpipes
	// change it (§2.4).  Empty means undefined/local.
	Location string
}

// New returns a Typespec for the given item type.
func New(itemType string) Typespec {
	return Typespec{ItemType: itemType}
}

// Clone returns a deep copy.
func (ts Typespec) Clone() Typespec {
	cp := ts
	if ts.QoS != nil {
		cp.QoS = make(map[string]Range, len(ts.QoS))
		for k, v := range ts.QoS {
			cp.QoS[k] = v
		}
	}
	if ts.Props != nil {
		cp.Props = make(map[string]string, len(ts.Props))
		for k, v := range ts.Props {
			cp.Props[k] = v
		}
	}
	cp.SendsEvents = append([]string(nil), ts.SendsEvents...)
	cp.HandlesEvents = append([]string(nil), ts.HandlesEvents...)
	return cp
}

// WithQoS sets one QoS range (copy-on-write) and returns the new spec.
func (ts Typespec) WithQoS(name string, r Range) Typespec {
	cp := ts.Clone()
	if cp.QoS == nil {
		cp.QoS = make(map[string]Range, 4)
	}
	cp.QoS[name] = r
	return cp
}

// WithProp sets one discrete property and returns the new spec.
func (ts Typespec) WithProp(name, val string) Typespec {
	cp := ts.Clone()
	if cp.Props == nil {
		cp.Props = make(map[string]string, 4)
	}
	cp.Props[name] = val
	return cp
}

// WithLocation sets the location property and returns the new spec.
// Reserved to netpipes by convention (§2.4).
func (ts Typespec) WithLocation(loc string) Typespec {
	cp := ts.Clone()
	cp.Location = loc
	return cp
}

// QoSRange returns the range for a QoS parameter (FullRange if absent).
func (ts Typespec) QoSRange(name string) Range {
	if ts.QoS == nil {
		return FullRange
	}
	r, ok := ts.QoS[name]
	if !ok {
		return FullRange
	}
	return r.normalised()
}

// ErrIncompatible is wrapped by all compatibility failures.
var ErrIncompatible = errors.New("typespec: incompatible flows")

// CompatibleWith checks that a flow described by ts (an output) can feed a
// stage that requires req (an input).  Undefined properties on either side
// do not constrain: they mean don't-know/don't-care.  Defined properties
// must agree: equal item types and discrete props, non-empty QoS
// intersections, and every event the consumer requires handled must be
// deliverable.
func (ts Typespec) CompatibleWith(req Typespec) error {
	if ts.ItemType != "" && req.ItemType != "" && ts.ItemType != req.ItemType {
		return fmt.Errorf("%w: item type %q vs %q", ErrIncompatible, ts.ItemType, req.ItemType)
	}
	if ts.PushPolicy != 0 && req.PushPolicy != 0 && ts.PushPolicy != req.PushPolicy {
		return fmt.Errorf("%w: push policy %v vs %v", ErrIncompatible, ts.PushPolicy, req.PushPolicy)
	}
	if ts.PullPolicy != 0 && req.PullPolicy != 0 && ts.PullPolicy != req.PullPolicy {
		return fmt.Errorf("%w: pull policy %v vs %v", ErrIncompatible, ts.PullPolicy, req.PullPolicy)
	}
	for name, r := range req.QoS {
		if ts.QoS == nil {
			break
		}
		mine, ok := ts.QoS[name]
		if !ok {
			continue
		}
		if mine.Intersect(r).Empty() {
			return fmt.Errorf("%w: QoS %q ranges %v and %v do not overlap",
				ErrIncompatible, name, mine, r)
		}
	}
	for name, val := range req.Props {
		if ts.Props == nil {
			break
		}
		mine, ok := ts.Props[name]
		if !ok {
			continue
		}
		if mine != val {
			return fmt.Errorf("%w: property %q is %q, consumer needs %q",
				ErrIncompatible, name, mine, val)
		}
	}
	return nil
}

// Merge combines two compatible specs into their refinement: defined values
// win over undefined ones, QoS ranges are intersected, event capabilities
// are unioned.  An error is returned if the specs are incompatible.
func (ts Typespec) Merge(other Typespec) (Typespec, error) {
	if err := ts.CompatibleWith(other); err != nil {
		return Typespec{}, err
	}
	out := ts.Clone()
	if out.ItemType == "" {
		out.ItemType = other.ItemType
	}
	if out.PushPolicy == 0 {
		out.PushPolicy = other.PushPolicy
	}
	if out.PullPolicy == 0 {
		out.PullPolicy = other.PullPolicy
	}
	if out.Location == "" {
		out.Location = other.Location
	}
	for name, r := range other.QoS {
		if out.QoS == nil {
			out.QoS = make(map[string]Range, len(other.QoS))
		}
		if mine, ok := out.QoS[name]; ok {
			out.QoS[name] = mine.Intersect(r)
		} else {
			out.QoS[name] = r
		}
	}
	for name, v := range other.Props {
		if out.Props == nil {
			out.Props = make(map[string]string, len(other.Props))
		}
		if _, ok := out.Props[name]; !ok {
			out.Props[name] = v
		}
	}
	out.SendsEvents = unionStrings(out.SendsEvents, other.SendsEvents)
	out.HandlesEvents = unionStrings(out.HandlesEvents, other.HandlesEvents)
	return out, nil
}

// IsSubsetOf reports whether ts describes a subset of the flows that sup
// describes: every constraint ts defines must be at least as tight as sup's
// (§2.3: a stage's Typespec can be a subset because it supports fewer data
// types or a smaller QoS range).
func (ts Typespec) IsSubsetOf(sup Typespec) bool {
	if sup.ItemType != "" && ts.ItemType != sup.ItemType {
		return false
	}
	if sup.PushPolicy != 0 && ts.PushPolicy != sup.PushPolicy {
		return false
	}
	if sup.PullPolicy != 0 && ts.PullPolicy != sup.PullPolicy {
		return false
	}
	if sup.Location != "" && ts.Location != sup.Location {
		return false
	}
	for name, supR := range sup.QoS {
		if !supR.normalised().ContainsRange(ts.QoSRange(name)) {
			return false
		}
	}
	for name, v := range sup.Props {
		if ts.Props == nil || ts.Props[name] != v {
			return false
		}
	}
	return true
}

// HandlesEvent reports whether the spec declares handling of the event type.
func (ts Typespec) HandlesEvent(ev string) bool {
	for _, e := range ts.HandlesEvents {
		if e == ev {
			return true
		}
	}
	return false
}

// String renders the spec compactly for diagnostics.
func (ts Typespec) String() string {
	var b strings.Builder
	b.WriteString("typespec{")
	if ts.ItemType != "" {
		fmt.Fprintf(&b, "item=%s", ts.ItemType)
	}
	if ts.Location != "" {
		fmt.Fprintf(&b, " loc=%s", ts.Location)
	}
	if len(ts.QoS) > 0 {
		keys := make([]string, 0, len(ts.QoS))
		for k := range ts.QoS {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%v", k, ts.QoS[k])
		}
	}
	b.WriteString("}")
	return b.String()
}

func unionStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]struct{}, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, s := range a {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	for _, s := range b {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// Transform is a Typespec transformation: a pipeline component maps the
// spec at its input port to the spec at its output port (§2.3).  Identity
// is the nil Transform.
type Transform func(Typespec) Typespec

// Apply runs the transform, treating nil as identity.
func (f Transform) Apply(ts Typespec) Typespec {
	if f == nil {
		return ts
	}
	return f(ts)
}

// Chain composes transforms left to right.
func Chain(fs ...Transform) Transform {
	return func(ts Typespec) Typespec {
		for _, f := range fs {
			ts = f.Apply(ts)
		}
		return ts
	}
}
