package typespec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolarityString(t *testing.T) {
	cases := map[Polarity]string{
		Negative:    "-",
		Positive:    "+",
		Poly:        "α",
		Polarity(9): "Polarity(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestPolarityOpposite(t *testing.T) {
	if Negative.Opposite() != Positive || Positive.Opposite() != Negative {
		t.Error("fixed polarities must flip")
	}
	if Poly.Opposite() != Poly {
		t.Error("the opposite of α is α")
	}
}

func TestConnectPolarityTable(t *testing.T) {
	// §2.3: ports with opposite polarity may be connected; an attempt to
	// connect two ports with the same polarity is an error; polymorphic
	// ports acquire an induced polarity.
	cases := []struct {
		out, in Polarity
		want    Polarity
		wantErr bool
	}{
		{Positive, Negative, Positive, false}, // push connection
		{Negative, Positive, Negative, false}, // pull connection
		{Positive, Positive, 0, true},
		{Negative, Negative, 0, true},
		{Poly, Negative, Positive, false}, // induced: peer receives push
		{Poly, Positive, Negative, false},
		{Positive, Poly, Positive, false},
		{Negative, Poly, Negative, false},
		{Poly, Poly, Poly, false}, // stays polymorphic
	}
	for _, c := range cases {
		got, err := ConnectPolarity(c.out, c.in)
		if c.wantErr {
			if !errors.Is(err, ErrPolarityClash) {
				t.Errorf("ConnectPolarity(%v,%v) err = %v, want clash", c.out, c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ConnectPolarity(%v,%v) unexpected error %v", c.out, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ConnectPolarity(%v,%v) = %v, want %v", c.out, c.in, got, c.want)
		}
	}
}

func TestBlockPolicyString(t *testing.T) {
	if Block.String() != "block" || NonBlock.String() != "nonblock" {
		t.Error("policy names wrong")
	}
	if BlockPolicy(7).String() == "" {
		t.Error("unknown policy must still render")
	}
}

func TestRangeBasics(t *testing.T) {
	r := Between(10, 60)
	if !r.Contains(10) || !r.Contains(60) || !r.Contains(30) {
		t.Error("closed interval must contain endpoints and interior")
	}
	if r.Contains(9.999) || r.Contains(60.001) {
		t.Error("out-of-range values accepted")
	}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if !Between(5, 4).Empty() {
		t.Error("inverted range must be empty")
	}
}

func TestZeroRangeIsFull(t *testing.T) {
	var r Range
	if !r.Contains(math.Inf(1)) || !r.Contains(math.Inf(-1)) || !r.Contains(0) {
		t.Error("zero Range must be unconstrained (don't care)")
	}
	if r.Empty() {
		t.Error("zero Range is not empty")
	}
}

func TestRangeConstructors(t *testing.T) {
	if r := Exactly(5); r.Lo != 5 || r.Hi != 5 {
		t.Errorf("Exactly = %v", r)
	}
	if r := AtLeast(3); !r.Contains(1e300) || r.Contains(2.999) {
		t.Errorf("AtLeast = %v", r)
	}
	if r := AtMost(3); !r.Contains(-1e300) || r.Contains(3.001) {
		t.Errorf("AtMost = %v", r)
	}
}

func TestRangeIntersect(t *testing.T) {
	a, b := Between(0, 10), Between(5, 20)
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Errorf("Intersect = %v, want [5,10]", got)
	}
	if !Between(0, 2).Intersect(Between(3, 4)).Empty() {
		t.Error("disjoint ranges must intersect to empty")
	}
}

func TestRangeContainsRange(t *testing.T) {
	if !Between(0, 10).ContainsRange(Between(2, 8)) {
		t.Error("superset check failed")
	}
	if Between(0, 10).ContainsRange(Between(2, 18)) {
		t.Error("partial overlap must not count as containment")
	}
	var full Range
	if !full.ContainsRange(Between(-1e300, 1e300)) {
		t.Error("zero range must contain everything")
	}
}

// Property: intersection is commutative, and the intersection is contained
// in both operands (when non-empty).
func TestRangeIntersectProperties(t *testing.T) {
	gen := func(r *rand.Rand) Range {
		lo := r.Float64()*200 - 100
		return Range{Lo: lo, Hi: lo + r.Float64()*100}
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Empty() {
			return true
		}
		return a.ContainsRange(ab) && b.ContainsRange(ab)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompatibleWithUndefinedSides(t *testing.T) {
	// Undefined properties are don't-know/don't-care: the zero spec is
	// compatible with everything.
	var zero Typespec
	full := New("video/frames").
		WithQoS("rate", Between(10, 60)).
		WithProp("codec", "synthetic")
	if err := zero.CompatibleWith(full); err != nil {
		t.Errorf("zero vs full: %v", err)
	}
	if err := full.CompatibleWith(zero); err != nil {
		t.Errorf("full vs zero: %v", err)
	}
}

func TestCompatibleWithConflicts(t *testing.T) {
	a := New("video/frames")
	b := New("audio/samples")
	if err := a.CompatibleWith(b); !errors.Is(err, ErrIncompatible) {
		t.Errorf("item type conflict: %v", err)
	}
	c := New("x").WithQoS("rate", Between(0, 10))
	d := New("x").WithQoS("rate", Between(20, 30))
	if err := c.CompatibleWith(d); !errors.Is(err, ErrIncompatible) {
		t.Errorf("QoS conflict: %v", err)
	}
	e := New("x").WithProp("codec", "a")
	f := New("x").WithProp("codec", "b")
	if err := e.CompatibleWith(f); !errors.Is(err, ErrIncompatible) {
		t.Errorf("prop conflict: %v", err)
	}
	g, h := New("x"), New("x")
	g.PushPolicy, h.PushPolicy = Block, NonBlock
	if err := g.CompatibleWith(h); !errors.Is(err, ErrIncompatible) {
		t.Errorf("policy conflict: %v", err)
	}
}

func TestMergeRefines(t *testing.T) {
	a := New("video/frames").WithQoS("rate", Between(10, 60))
	b := Typespec{}.WithQoS("rate", Between(25, 100)).WithProp("codec", "syn")
	m, err := a.Merge(b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if m.ItemType != "video/frames" {
		t.Errorf("item type lost: %q", m.ItemType)
	}
	if got := m.QoSRange("rate"); got.Lo != 25 || got.Hi != 60 {
		t.Errorf("rate = %v, want [25,60] (intersection)", got)
	}
	if m.Props["codec"] != "syn" {
		t.Error("prop not merged")
	}
}

func TestMergeIncompatibleFails(t *testing.T) {
	a, b := New("x"), New("y")
	if _, err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("merge of incompatible specs: %v", err)
	}
}

func TestMergeEventUnion(t *testing.T) {
	a := Typespec{SendsEvents: []string{"resize"}, HandlesEvents: []string{"eos"}}
	b := Typespec{SendsEvents: []string{"resize", "report"}, HandlesEvents: []string{"drop"}}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SendsEvents) != 2 {
		t.Errorf("SendsEvents = %v", m.SendsEvents)
	}
	if len(m.HandlesEvents) != 2 {
		t.Errorf("HandlesEvents = %v", m.HandlesEvents)
	}
	if !m.HandlesEvent("eos") || !m.HandlesEvent("drop") || m.HandlesEvent("nope") {
		t.Error("HandlesEvent wrong")
	}
}

func TestIsSubsetOf(t *testing.T) {
	sup := New("video/frames").WithQoS("rate", Between(0, 100))
	sub := New("video/frames").WithQoS("rate", Between(10, 50))
	if !sub.IsSubsetOf(sup) {
		t.Error("tighter spec must be a subset")
	}
	if sup.IsSubsetOf(sub) {
		t.Error("looser spec must not be a subset")
	}
	// A subset must match defined discrete props.
	p := New("x").WithProp("codec", "a")
	q := New("x")
	if q.IsSubsetOf(p) {
		t.Error("missing prop cannot satisfy a defined prop")
	}
	if !p.IsSubsetOf(q) {
		t.Error("extra props don't break subset w.r.t. undefined")
	}
	// Location participates (§2.4).
	l1 := New("x").WithLocation("nodeA")
	l2 := New("x").WithLocation("nodeB")
	if l1.IsSubsetOf(l2) {
		t.Error("different locations cannot be subsets")
	}
}

// Property: Merge(a, b) is a subset of neither... rather: the merged spec
// is compatible with both operands, and merging is idempotent.
func TestMergeProperties(t *testing.T) {
	items := []string{"", "video", "audio"}
	gen := func(r *rand.Rand) Typespec {
		ts := Typespec{ItemType: items[r.Intn(len(items))]}
		if r.Intn(2) == 0 {
			lo := r.Float64() * 50
			ts = ts.WithQoS("rate", Between(lo, lo+r.Float64()*50))
		}
		if r.Intn(2) == 0 {
			ts = ts.WithProp("codec", []string{"a", "b"}[r.Intn(2)])
		}
		return ts
	}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		m, err := a.Merge(b)
		if err != nil {
			return true // incompatible pair: nothing to check
		}
		// Idempotence: merging the result with itself changes nothing
		// observable.
		mm, err := m.Merge(m)
		if err != nil {
			return false
		}
		if mm.ItemType != m.ItemType || len(mm.QoS) != len(m.QoS) {
			return false
		}
		// The merge must remain compatible with both inputs.
		return m.CompatibleWith(a) == nil && m.CompatibleWith(b) == nil
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New("x").WithQoS("rate", Between(1, 2)).WithProp("k", "v")
	a.SendsEvents = []string{"e"}
	b := a.Clone()
	b.QoS["rate"] = Between(9, 10)
	b.Props["k"] = "changed"
	b.SendsEvents[0] = "other"
	if a.QoS["rate"] != Between(1, 2) || a.Props["k"] != "v" || a.SendsEvents[0] != "e" {
		t.Error("Clone shares state with the original")
	}
}

func TestQoSRangeAbsentIsFull(t *testing.T) {
	ts := New("x")
	if got := ts.QoSRange("anything"); !got.ContainsRange(Between(-1e300, 1e300)) {
		t.Errorf("absent QoS = %v, want full", got)
	}
}

func TestStringRendering(t *testing.T) {
	ts := New("video").WithLocation("nodeA").WithQoS("rate", Between(10, 60))
	s := ts.String()
	for _, want := range []string{"video", "nodeA", "rate"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if r := Between(1, 2).String(); r != "[1, 2]" {
		t.Errorf("Range.String = %q", r)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestTransformChain(t *testing.T) {
	double := Transform(func(ts Typespec) Typespec {
		r := ts.QoSRange("rate")
		return ts.WithQoS("rate", Between(r.Lo*2, r.Hi*2))
	})
	locate := Transform(func(ts Typespec) Typespec { return ts.WithLocation("remote") })
	chained := Chain(double, locate, nil) // nil links are identity
	out := chained.Apply(New("x").WithQoS("rate", Between(10, 20)))
	if got := out.QoSRange("rate"); got.Lo != 20 || got.Hi != 40 {
		t.Errorf("rate = %v", got)
	}
	if out.Location != "remote" {
		t.Errorf("location = %q", out.Location)
	}
	// Nil transform is identity.
	var id Transform
	in := New("y")
	if got := id.Apply(in); got.ItemType != "y" {
		t.Error("nil Transform must be identity")
	}
}
