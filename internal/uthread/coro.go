package uthread

import (
	"errors"
	"sync/atomic"
)

// ErrLinkClosed is returned from Put/Get once a coroutine link is closed
// (normally when the pipeline receives a stop event).
var ErrLinkClosed = errors.New("uthread: coroutine link closed")

// CoroLink joins two threads of one coroutine set with the synchronous
// handoff semantics of §3.3: the communication does not buffer data —
// "instead the activity travels with the data", and all but one coroutine in
// a set is blocked at any time.
//
// Following §4, the synchronous interaction is implemented on top of
// asynchronous messages rather than a synchronous call: while one side is
// blocked in Put or Get, control messages are still delivered through the
// thread's control dispatch hook, so components remain responsive to control
// events even when blocked in a push or pull.
//
// Protocol (derived from the control-flow traces of Figs 5, 6 and 8):
//
//   - Put(x): send a data message to the getter side, then block until the
//     getter performs its next Get against an empty link (which sends a
//     resume message back).
//   - Get(): if an item is already at hand (the stashed invoking message or
//     a queued data message), take it without unblocking the putter; else
//     send a resume to the putter and block for the data message.
//
// This reproduces exactly the arrow patterns of the paper's figures: the
// external activity of a wrapped component is indistinguishable from a
// hand-written passive implementation (experiment E3).
type CoroLink struct {
	name string
	up   *Thread // putter side
	down *Thread // getter side

	// stash holds the payload of the message that invoked the getter's
	// code function, so the component's first pull can consume it.
	// Owning (getter) goroutine only.
	stash   any
	stashOK bool

	closed atomic.Bool
}

// coroPayload routes coroutine messages to their link.
type coroPayload struct {
	link *CoroLink
	item any
}

// NewCoroLink creates a named, unbound link.  Bind both sides before use.
func NewCoroLink(name string) *CoroLink {
	return &CoroLink{name: name}
}

// Name returns the link's diagnostic name.
func (l *CoroLink) Name() string { return l.name }

// BindUp attaches the putter-side thread.
func (l *CoroLink) BindUp(t *Thread) { l.up = t }

// BindDown attaches the getter-side thread.
func (l *CoroLink) BindDown(t *Thread) { l.down = t }

// Up returns the putter-side thread.
func (l *CoroLink) Up() *Thread { return l.up }

// Down returns the getter-side thread.
func (l *CoroLink) Down() *Thread { return l.down }

// Offer stashes the item carried by the message that invoked the getter's
// code function so that the component's first Get consumes it without a
// handoff (the "first push call invokes the main function" case of §3.3).
// Must be called from the getter-side goroutine.
func (l *CoroLink) Offer(item any) {
	l.stash = item
	l.stashOK = true
}

// Close marks the link closed; both sides' pending and future Put/Get calls
// return ErrLinkClosed once they observe the closure (they notice after the
// next control dispatch or immediately on entry).  Safe from either side.
func (l *CoroLink) Close() { l.closed.Store(true) }

// Closed reports whether the link has been closed.
func (l *CoroLink) Closed() bool { return l.closed.Load() }

// IsCoroData reports whether m is a data message for this link.
func (l *CoroLink) IsCoroData(m Message) bool {
	p, ok := m.Data.(coroPayload)
	return ok && m.Kind == KindCoroData && p.link == l
}

// isResume reports whether m is a resume message for this link.
func (l *CoroLink) isResume(m Message) bool {
	p, ok := m.Data.(coroPayload)
	return ok && m.Kind == KindCoroResume && p.link == l
}

// ItemOf extracts the data item from a coroutine data message.
func ItemOf(m Message) any {
	if p, ok := m.Data.(coroPayload); ok {
		return p.item
	}
	return nil
}

// Drain releases a putter blocked in Put without consuming another item.
// It is a shutdown-path operation: the getter calls it just before
// terminating so the last Put can return.  Calling Drain when no Put is
// pending leaves a stale resume in the putter's mailbox, so it must only be
// used when the link will not be used again.  Getter-side goroutine only.
func (l *CoroLink) Drain(t *Thread) {
	t.sendInternal(l.up, Message{Kind: KindCoroResume, Data: coroPayload{link: l}})
}

// Put transfers item across the link from the putter side.  It returns when
// the getter next drains the link (synchronous handoff), or ErrLinkClosed.
// Must be called from the up-side goroutine while it holds the CPU.
func (l *CoroLink) Put(t *Thread, item any) error {
	if l.closed.Load() {
		return ErrLinkClosed
	}
	t.sendInternal(l.down, Message{Kind: KindCoroData, Data: coroPayload{link: l, item: item}})
	for {
		m := t.awaitMessage(func(m Message) bool {
			return l.isResume(m) || (t.ctrlMatch != nil && t.ctrlMatch(m))
		})
		if l.isResume(m) {
			return nil
		}
		t.dispatchControl(m)
		if l.closed.Load() {
			return ErrLinkClosed
		}
	}
}

// Get receives the next item from the link on the getter side, or
// ErrLinkClosed.  Must be called from the down-side goroutine while it holds
// the CPU.
func (l *CoroLink) Get(t *Thread) (any, error) {
	if l.stashOK {
		item := l.stash
		l.stash = nil
		l.stashOK = false
		return item, nil
	}
	if l.closed.Load() {
		return nil, ErrLinkClosed
	}
	// An item may already be queued (putter ran ahead); taking it must not
	// release the putter — it stays blocked until our next empty Get.
	if m, ok := t.TryReceive(l.IsCoroData); ok {
		return ItemOf(m), nil
	}
	// Empty link: release the putter (its previous Put returns), then wait
	// for it to produce.
	t.sendInternal(l.up, Message{Kind: KindCoroResume, Data: coroPayload{link: l}})
	for {
		m := t.awaitMessage(func(m Message) bool {
			return l.IsCoroData(m) || (t.ctrlMatch != nil && t.ctrlMatch(m))
		})
		if l.IsCoroData(m) {
			return ItemOf(m), nil
		}
		t.dispatchControl(m)
		if l.closed.Load() {
			return nil, ErrLinkClosed
		}
	}
}
