package uthread

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// creditScale is the virtual-time cost of one scheduling grant for a class of
// weight 1.  Costs are creditScale/weight, so a weight-4 class advances its
// virtual time a quarter as fast per grant and therefore wins four times as
// many tie-breaks — start-time fair queueing with integer arithmetic (no
// floats: determinism requires bit-exact accounting).
const creditScale = 1 << 16

// SchedClass is a weighted-fair scheduling class (one per tenant per
// scheduler).  Threads spawned into a class share its virtual-time account:
// every time a member thread becomes ready it is stamped with the class's
// virtual time and the class is charged creditScale/weight, so classes with
// larger weights accumulate virtual time more slowly and their threads sort
// earlier among equal-priority peers (SCFQ-style weighted fairness folded
// into the ready queue's cached-priority tie-break).
//
// A class binds to the first scheduler that spawns into it and may not be
// shared across schedulers: cross-scheduler sharing would make the account
// mutation order depend on goroutine interleaving, breaking determinism.
// Create one class per (tenant, scheduler) pair instead.
//
// A nil *SchedClass is the default class: no accounting, virtual-time stamp
// equal to the scheduler's current virtual time — byte-for-byte identical
// scheduling to a fairness-unaware scheduler when no real classes exist.
type SchedClass struct {
	name string

	// weight and cost are atomics so a live RebindTenant edit can retune a
	// running class: cost is read by the ready-queue push (under the bound
	// scheduler's mutex) while SetWeight stores from the editing goroutine.
	weight atomic.Int64
	cost   atomic.Int64

	bindMu sync.Mutex
	sched  *Scheduler

	// vtime is the class's virtual-time account; granted counts run-token
	// grants to member threads.  Both are mutated only under the bound
	// scheduler's mutex (deterministic order); atomics make them readable
	// from stats goroutines without taking that mutex.
	vtime   atomic.Int64
	granted atomic.Int64
}

// NewSchedClass creates a scheduling class with the given diagnostic name and
// weight (minimum 1).  Weight is relative: a weight-2 class receives twice
// the tie-break share of a weight-1 class under contention.
func NewSchedClass(name string, weight int) *SchedClass {
	c := &SchedClass{name: name}
	c.SetWeight(weight)
	return c
}

// Name returns the class's diagnostic name.
func (c *SchedClass) Name() string { return c.name }

// Weight returns the class's fairness weight.  Safe from any goroutine.
func (c *SchedClass) Weight() int { return int(c.weight.Load()) }

// SetWeight retunes the class's fairness weight (minimum 1) on a live
// scheduler.  The new per-grant cost applies from the next ready-queue
// admission of any member thread — i.e. within one pump cycle — without
// touching the virtual-time account, so past grants keep their old cost and
// the share shift is glitch-free.  Safe from any goroutine.
func (c *SchedClass) SetWeight(weight int) {
	if weight < 1 {
		weight = 1
	}
	c.weight.Store(int64(weight))
	c.cost.Store(creditScale / int64(weight))
}

// VTime returns the class's current virtual-time account.  Safe from any
// goroutine.
func (c *SchedClass) VTime() int64 { return c.vtime.Load() }

// Granted returns the number of run-token grants charged to the class.  Safe
// from any goroutine.
func (c *SchedClass) Granted() int64 { return c.granted.Load() }

// bind attaches the class to s, refusing a second scheduler.
func (c *SchedClass) bind(s *Scheduler) {
	c.bindMu.Lock()
	defer c.bindMu.Unlock()
	if c.sched == nil {
		c.sched = s
		return
	}
	if c.sched != s {
		panic(fmt.Sprintf("uthread: SchedClass %q already bound to another scheduler (create one class per scheduler)", c.name))
	}
}

// FairNow returns the scheduler's current virtual time — the stamp of the
// latest granted classed thread.  Classes with VTime() ahead of FairNow are
// in credit debt (they have been granted more than their share and are
// waiting for the server clock to catch up).  Safe from any goroutine.
func (s *Scheduler) FairNow() int64 { return s.ready.vnowAtomic.Load() }

// SpawnClassed creates a thread like Spawn, additionally binding it to a
// weighted-fair scheduling class (nil = default class, identical to Spawn).
// All threads of one pipeline share their tenant's class, so the fairness
// account charges per pump cycle regardless of how the pipeline is threaded.
func (s *Scheduler) SpawnClassed(name string, prio Priority, class *SchedClass, code CodeFunc) *Thread {
	if class != nil {
		class.bind(s)
	}
	s.mu.Lock()
	s.nextID++
	t := &Thread{
		id:      s.nextID,
		name:    name,
		sched:   s,
		static:  prio,
		class:   class,
		code:    code,
		state:   stateBlocked, // waiting for first message
		heapIdx: -1,
		gate:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.threads[t.id] = t
	s.live++
	s.mu.Unlock()
	go t.run()
	return t
}
