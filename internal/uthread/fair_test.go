package uthread

import (
	"strings"
	"testing"
)

// spawnSelfPosting spawns a classed thread that keeps itself ready for
// `rounds` grants: each message appends its tag to the shared order log and
// re-posts itself, so the thread competes for every scheduling decision
// until its budget runs out.
func spawnSelfPosting(s *Scheduler, name, tag string, class *SchedClass, rounds int, order *[]string) *Thread {
	n := 0
	var th *Thread
	th = s.SpawnClassed(name, PriorityNormal, class, func(t *Thread, m Message) Disposition {
		*order = append(*order, tag)
		n++
		if n >= rounds {
			return Terminate
		}
		s.Post(th, Message{Kind: kindData})
		return Continue
	})
	return th
}

// TestWeightedFairGrantShares is the WFQ contract: three continuously-ready
// classes with weights 4:2:1 must receive grants in ≈4:2:1 proportion over
// any window in which all three are backlogged.
func TestWeightedFairGrantShares(t *testing.T) {
	s := New()
	var order []string
	a := NewSchedClass("gold", 4)
	b := NewSchedClass("silver", 2)
	c := NewSchedClass("bronze", 1)
	const rounds = 2100
	tha := spawnSelfPosting(s, "a", "a", a, rounds, &order)
	thb := spawnSelfPosting(s, "b", "b", b, rounds, &order)
	thc := spawnSelfPosting(s, "c", "c", c, rounds, &order)
	s.Post(tha, Message{Kind: kindData})
	s.Post(thb, Message{Kind: kindData})
	s.Post(thc, Message{Kind: kindData})
	runScheduler(t, s)

	// All three backlogged while the bronze class still has budget: bronze
	// drains its 2100 grants last, at 1/7 of the grant stream, so the first
	// 7*2100 grants form the contention window... except gold and silver run
	// dry earlier (4/7 share * window > their budget).  Use the window until
	// the FIRST class exhausts its budget: gold at 4/7 share exhausts after
	// ~2100*7/4 ≈ 3675 grants.  Count shares over the first 3500 grants.
	window := order
	if len(window) > 3500 {
		window = window[:3500]
	}
	counts := map[string]int{}
	for _, tag := range window {
		counts[tag]++
	}
	total := len(window)
	wantShare := map[string]float64{"a": 4.0 / 7, "b": 2.0 / 7, "c": 1.0 / 7}
	for tag, want := range wantShare {
		got := float64(counts[tag]) / float64(total)
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("class %s share %.3f, want %.3f ±15%% (counts %v)", tag, got, want, counts)
		}
	}
	// The accounting is integer and the scheduler single-threaded: the grant
	// order must be bit-for-bit reproducible.
	s2 := New()
	var order2 []string
	a2, b2, c2 := NewSchedClass("gold", 4), NewSchedClass("silver", 2), NewSchedClass("bronze", 1)
	t2a := spawnSelfPosting(s2, "a", "a", a2, rounds, &order2)
	t2b := spawnSelfPosting(s2, "b", "b", b2, rounds, &order2)
	t2c := spawnSelfPosting(s2, "c", "c", c2, rounds, &order2)
	s2.Post(t2a, Message{Kind: kindData})
	s2.Post(t2b, Message{Kind: kindData})
	s2.Post(t2c, Message{Kind: kindData})
	runScheduler(t, s2)
	if strings.Join(order, "") != strings.Join(order2, "") {
		t.Fatal("weighted-fair grant order is not reproducible across identical runs")
	}
	// Telemetry: grants were charged to the classes, and the virtual clock
	// advanced.  Grant counts are not 1:1 with messages — an uncontended
	// thread keeps its run token across messages — so only their presence
	// is asserted here; the share math above is the real contract.
	if a.Granted() == 0 || b.Granted() == 0 || c.Granted() == 0 {
		t.Fatalf("granted counters %d/%d/%d, want all non-zero", a.Granted(), b.Granted(), c.Granted())
	}
	if s.FairNow() == 0 {
		t.Fatal("scheduler virtual time never advanced under classed load")
	}
}

// TestPriorityDominatesFairness: fairness is a tie-break among equal
// priorities, never an inversion — a high-priority classless thread
// preempts classed Normal threads regardless of their credit state.
func TestPriorityDominatesFairness(t *testing.T) {
	s := New()
	var order []string
	cls := NewSchedClass("tenant", 8)
	worker := spawnSelfPosting(s, "worker", "w", cls, 50, &order)
	hi := s.Spawn("hi", PriorityHigh, func(t *Thread, m Message) Disposition {
		order = append(order, "H")
		return Terminate
	})
	s.Post(worker, Message{Kind: kindData})
	s.Post(hi, Message{Kind: kindData})
	runScheduler(t, s)
	if order[0] != "H" {
		t.Fatalf("high-priority thread ran at position %v, want first (order %v)", order[0], order[:5])
	}
}

// TestClasslessSchedulingUntouched: with no classes in play the fair clock
// must never advance — the pre-fairness scheduler behaviour, and the
// byte-identical default-tenant guarantee, rest on vnow staying zero.
func TestClasslessSchedulingUntouched(t *testing.T) {
	s := New()
	var order []string
	w1 := spawnSelfPosting(s, "w1", "1", nil, 100, &order)
	w2 := spawnSelfPosting(s, "w2", "2", nil, 100, &order)
	s.Post(w1, Message{Kind: kindData})
	s.Post(w2, Message{Kind: kindData})
	runScheduler(t, s)
	if got := s.FairNow(); got != 0 {
		t.Fatalf("FairNow = %d after a classless run, want 0", got)
	}
	if len(order) != 200 {
		t.Fatalf("ran %d grants, want 200", len(order))
	}
}

// TestSchedClassSingleSchedulerBind: sharing one class across schedulers
// would make the credit account racy; the second bind must panic.
func TestSchedClassSingleSchedulerBind(t *testing.T) {
	s1, s2 := New(), New()
	cls := NewSchedClass("shared", 2)
	th := s1.SpawnClassed("t1", PriorityNormal, cls, func(t *Thread, m Message) Disposition {
		return Terminate
	})
	s1.Post(th, Message{Kind: kindData})
	runScheduler(t, s1)
	defer func() {
		if recover() == nil {
			t.Fatal("binding one SchedClass to a second scheduler did not panic")
		}
		// Unwind s2: the spawn panicked before the thread existed.
		s2.Stop()
	}()
	s2.SpawnClassed("t2", PriorityNormal, cls, func(t *Thread, m Message) Disposition {
		return Terminate
	})
}

// TestSchedClassMinimumWeight: weight 0 (or negative) clamps to 1 instead
// of dividing by zero in the cost computation.
func TestSchedClassMinimumWeight(t *testing.T) {
	c := NewSchedClass("x", 0)
	if c.Weight() != 1 {
		t.Fatalf("weight clamped to %d, want 1", c.Weight())
	}
}
