package uthread

import (
	"container/heap"
	"time"
)

// readyQueue is a max-heap of runnable threads ordered by effective
// priority, FIFO within a priority level.  All access happens with the
// scheduler mutex held.
type readyQueue struct {
	items   readyHeap
	nextSeq uint64
	seqs    map[uint64]uint64 // thread id -> push sequence (FIFO tiebreak)
}

type readyHeap struct {
	q *readyQueue
	v []*Thread
}

func (h readyHeap) Len() int { return len(h.v) }

func (h readyHeap) Less(i, j int) bool {
	a, b := h.v[i], h.v[j]
	pa, pb := a.effectivePriorityLocked(), b.effectivePriorityLocked()
	if pa != pb {
		return pa > pb // max-heap: higher priority first
	}
	return h.q.seqs[a.id] < h.q.seqs[b.id] // FIFO among equals
}

func (h readyHeap) Swap(i, j int) {
	h.v[i], h.v[j] = h.v[j], h.v[i]
	h.v[i].heapIdx = i
	h.v[j].heapIdx = j
}

func (h *readyHeap) Push(x any) {
	t := x.(*Thread)
	t.heapIdx = len(h.v)
	h.v = append(h.v, t)
}

func (h *readyHeap) Pop() any {
	old := h.v
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	h.v = old[:n-1]
	return t
}

func (q *readyQueue) init() {
	if q.seqs == nil {
		q.seqs = make(map[uint64]uint64)
		q.items.q = q
	}
}

// push adds t to the run queue.  Pushing a thread that is already queued is
// a no-op (idempotent, guarding against double-ready races).
func (q *readyQueue) push(t *Thread) {
	q.init()
	if _, queued := q.seqs[t.id]; queued {
		return
	}
	q.nextSeq++
	q.seqs[t.id] = q.nextSeq
	heap.Push(&q.items, t)
}

// popMax removes and returns the highest-effective-priority thread, or nil.
func (q *readyQueue) popMax() *Thread {
	q.init()
	if len(q.items.v) == 0 {
		return nil
	}
	t := heap.Pop(&q.items).(*Thread)
	delete(q.seqs, t.id)
	return t
}

// peekMax returns the highest-effective-priority thread without removing
// it, or nil.
func (q *readyQueue) peekMax() *Thread {
	q.init()
	if len(q.items.v) == 0 {
		return nil
	}
	// The heap root is the max, but effective priorities can drift between
	// pushes (priority inheritance); re-establish before answering.
	heap.Init(&q.items)
	return q.items.v[0]
}

// fix restores heap order after t's effective priority may have changed.
func (q *readyQueue) fix(t *Thread) {
	q.init()
	if _, queued := q.seqs[t.id]; !queued || t.heapIdx < 0 {
		return
	}
	heap.Fix(&q.items, t.heapIdx)
}

// timerEntry is a pending timer.
type timerEntry struct {
	at    time.Time
	seq   uint64
	dst   *Thread
	token TimerToken
}

// timerQueue is a min-heap of timers by (deadline, arrival).  Cancellation
// is lazy: cancelled tokens are skipped on peek/pop.  All access happens
// with the scheduler mutex held.
type timerQueue struct {
	items     timerHeap
	cancelled map[TimerToken]struct{}
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (q *timerQueue) push(e timerEntry) {
	heap.Push(&q.items, e)
}

// cancel marks tok cancelled; reports whether it was pending.
func (q *timerQueue) cancel(tok TimerToken) bool {
	if _, dead := q.cancelled[tok]; dead {
		return false
	}
	for i := range q.items {
		if q.items[i].token == tok {
			if q.cancelled == nil {
				q.cancelled = make(map[TimerToken]struct{})
			}
			q.cancelled[tok] = struct{}{}
			return true
		}
	}
	return false
}

// peek returns the earliest live deadline.
func (q *timerQueue) peek() (time.Time, bool) {
	q.drainCancelled()
	if len(q.items) == 0 {
		return time.Time{}, false
	}
	return q.items[0].at, true
}

// popDue removes and returns the earliest timer due at or before now.
func (q *timerQueue) popDue(now time.Time) (timerEntry, bool) {
	q.drainCancelled()
	if len(q.items) == 0 || q.items[0].at.After(now) {
		return timerEntry{}, false
	}
	e := heap.Pop(&q.items).(timerEntry)
	return e, true
}

// drainCancelled removes cancelled entries from the heap root.
func (q *timerQueue) drainCancelled() {
	for len(q.items) > 0 {
		if _, dead := q.cancelled[q.items[0].token]; !dead {
			return
		}
		e := heap.Pop(&q.items).(timerEntry)
		delete(q.cancelled, e.token)
	}
}
