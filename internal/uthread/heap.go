package uthread

import (
	"container/heap"
	"sync/atomic"
	"time"
)

// readyQueue is a max-heap of runnable threads ordered by cached effective
// priority, weighted-fair virtual time within a priority level, FIFO among
// exact equals.  The cached fields (t.effPrio, t.vtSnap) are refreshed at
// every point a queued thread's ordering inputs can change — push, re-push,
// and message arrival (fix) — so heap comparisons are plain field compares
// and peekMax never has to rebuild the heap.  All access happens with the
// scheduler mutex held.
//
// vnow is the server virtual clock of the weighted-fair layer: the stamp of
// the latest granted classed thread.  Classless threads are stamped with
// vnow itself, so with no classes in play every stamp is zero and ordering
// degenerates to exactly the pre-fairness (priority, FIFO) order.
type readyQueue struct {
	items   readyHeap
	nextSeq uint64
	vnow    int64

	// vnowAtomic mirrors vnow for lock-free stats reads (Scheduler.FairNow).
	vnowAtomic atomic.Int64
}

type readyHeap []*Thread

func (h readyHeap) Len() int { return len(h) }

func (h readyHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.effPrio != b.effPrio {
		return a.effPrio > b.effPrio // max-heap: higher priority first
	}
	if a.vtSnap != b.vtSnap {
		return a.vtSnap < b.vtSnap // weighted-fair: earliest virtual time first
	}
	return a.readySeq < b.readySeq // FIFO among equals
}

func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *readyHeap) Push(x any) {
	t := x.(*Thread)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}

func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}

// push adds t to the run queue, snapshotting its effective priority and
// weighted-fair virtual-time stamp.  A classed thread is stamped with
// max(class account, server virtual time) — an idle class forfeits unused
// credit instead of bursting after idleness (SCFQ start tags) — and the
// class account is charged one grant's cost per enqueue.  Pushing a thread
// that is already queued refreshes its cached priority instead (idempotent,
// guarding against double-ready races).
//
//ipvet:hotpath ready-queue admission; every wakeup and preemption passes here
func (q *readyQueue) push(t *Thread) {
	if t.heapIdx >= 0 {
		q.fix(t)
		return
	}
	q.nextSeq++
	t.readySeq = q.nextSeq
	t.effPrio = t.effectivePriorityLocked()
	if c := t.class; c != nil {
		vt := c.vtime.Load()
		if vt < q.vnow {
			vt = q.vnow
		}
		t.vtSnap = vt
		c.vtime.Store(vt + c.cost.Load())
	} else {
		t.vtSnap = q.vnow
	}
	heap.Push(&q.items, t)
}

// popMax removes and returns the highest-effective-priority thread, or nil.
// Granting a classed thread advances the server virtual clock to its stamp
// and charges the grant to its class's counter.
//
//ipvet:hotpath run-token grant; every context switch passes here
func (q *readyQueue) popMax() *Thread {
	if len(q.items) == 0 {
		return nil
	}
	t := heap.Pop(&q.items).(*Thread)
	if t.vtSnap > q.vnow {
		q.vnow = t.vtSnap
		q.vnowAtomic.Store(t.vtSnap)
	}
	if t.class != nil {
		t.class.granted.Add(1)
	}
	return t
}

// peekMax returns the highest-effective-priority thread without removing
// it, or nil.  The heap is maintained incrementally at every invalidation
// site, so the root is always current — no rebuild needed.
func (q *readyQueue) peekMax() *Thread {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// fix re-snapshots t's effective priority and restores heap order.  Called
// whenever a queued thread's priority inputs change (a message arrived).
func (q *readyQueue) fix(t *Thread) {
	if t.heapIdx < 0 {
		return
	}
	p := t.effectivePriorityLocked()
	if p == t.effPrio {
		return
	}
	t.effPrio = p
	heap.Fix(&q.items, t.heapIdx)
}

// timerEntry is a pending timer.
type timerEntry struct {
	at    time.Time
	seq   uint64
	dst   *Thread
	token TimerToken
}

// timerQueue is a min-heap of timers by (deadline, arrival).  Cancellation
// is lazy in the heap but O(1) to request: a token → pending index decides
// membership without scanning, and cancelled entries are skipped when they
// reach the root.  All access happens with the scheduler mutex held.
type timerQueue struct {
	items     timerHeap
	pending   map[TimerToken]struct{} // live (uncancelled) tokens in the heap
	cancelled map[TimerToken]struct{}
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (q *timerQueue) push(e timerEntry) {
	if q.pending == nil {
		q.pending = make(map[TimerToken]struct{})
	}
	q.pending[e.token] = struct{}{}
	heap.Push(&q.items, e)
}

// cancel marks tok cancelled; reports whether it was pending.  O(1).
func (q *timerQueue) cancel(tok TimerToken) bool {
	if _, live := q.pending[tok]; !live {
		return false
	}
	delete(q.pending, tok)
	if q.cancelled == nil {
		q.cancelled = make(map[TimerToken]struct{})
	}
	q.cancelled[tok] = struct{}{}
	return true
}

// peek returns the earliest live deadline.
func (q *timerQueue) peek() (time.Time, bool) {
	q.drainCancelled()
	if len(q.items) == 0 {
		return time.Time{}, false
	}
	return q.items[0].at, true
}

// popDue removes and returns the earliest timer due at or before now.
func (q *timerQueue) popDue(now time.Time) (timerEntry, bool) {
	q.drainCancelled()
	if len(q.items) == 0 || q.items[0].at.After(now) {
		return timerEntry{}, false
	}
	e := heap.Pop(&q.items).(timerEntry)
	delete(q.pending, e.token)
	return e, true
}

// purgeDst physically removes every timer addressed to dst (pending or
// lazily cancelled).  Called when dst terminates, so a dead thread's timers
// do not sit in the heap until due.  O(n) plus a heap rebuild — thread
// termination is rare next to timer traffic.
func (q *timerQueue) purgeDst(dst *Thread) {
	if len(q.items) == 0 {
		return
	}
	kept := q.items[:0]
	removed := false
	for _, e := range q.items {
		if e.dst == dst {
			delete(q.pending, e.token)
			delete(q.cancelled, e.token)
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	if !removed {
		return
	}
	q.items = kept
	heap.Init(&q.items)
}

// pendingLen reports the number of physical heap entries (tests).
func (q *timerQueue) pendingLen() int { return len(q.items) }

// drainCancelled removes cancelled entries from the heap root.
func (q *timerQueue) drainCancelled() {
	for len(q.items) > 0 {
		if _, dead := q.cancelled[q.items[0].token]; !dead {
			return
		}
		e := heap.Pop(&q.items).(timerEntry)
		delete(q.cancelled, e.token)
	}
}
