package uthread

// msgQueue holds a thread's pending messages bucketed by constraint level so
// that the scheduler's per-decision work is O(1) in queue length:
//
//   - best-message selection (highest constraint first, FIFO within a level)
//     pops the head of the highest non-empty bucket,
//   - bestConstraint (the priority-inheritance probe that used to scan the
//     whole queue per heap comparison) reads the same head,
//
// both in O(distinct constraint levels) — small and bounded in practice
// (applications use a handful of levels such as Low/Normal/High/Control).
// Unconstrained messages live in their own FIFO ring; constrained messages
// are indexed separately in buckets sorted by descending level.  Selective
// receives (non-nil predicates) still walk the queue, but in delivery order,
// so they find the same message the old scan-everything code found.
//
// All access happens with the scheduler mutex held.
type msgQueue struct {
	plain   msgRing     // unconstrained messages, FIFO
	buckets []msgBucket // constrained messages, sorted by level descending
	count   int
}

// msgBucket is the FIFO of pending messages at one constraint level.  Empty
// buckets are kept: levels recur, and keeping them avoids re-sorting churn.
type msgBucket struct {
	level Priority
	ring  msgRing
}

// msgRing is a FIFO of messages on a reusable backing slice: pops advance a
// head index instead of re-slicing, and the array is reclaimed for new
// pushes whenever the ring drains, so a steady-state producer/consumer pair
// stops allocating entirely.
type msgRing struct {
	buf  []Message
	head int
}

func (r *msgRing) len() int { return len(r.buf) - r.head }

//ipvet:hotpath mailbox ring append; every Post lands here
func (r *msgRing) push(m Message) {
	if r.head > 0 && r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
	r.buf = append(r.buf, m)
}

//ipvet:hotpath mailbox ring pop; every Receive lands here
func (r *msgRing) pop() Message {
	m := r.buf[r.head]
	r.buf[r.head] = Message{}
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	} else if r.head > 32 && r.head*2 >= len(r.buf) {
		// A mailbox that never fully drains would otherwise grow its dead
		// prefix forever; compact once the prefix dominates, keeping memory
		// at O(peak depth) like the slice-splicing code this replaced.
		n := copy(r.buf, r.buf[r.head:])
		clearTail := r.buf[n:]
		for i := range clearTail {
			clearTail[i] = Message{}
		}
		r.buf = r.buf[:n]
		r.head = 0
	}
	return m
}

// at returns the i-th queued message counting from the head (0-based).
func (r *msgRing) at(i int) *Message { return &r.buf[r.head+i] }

// removeAt removes and returns the i-th queued message (0-based from head).
func (r *msgRing) removeAt(i int) Message {
	if i == 0 {
		return r.pop()
	}
	idx := r.head + i
	m := r.buf[idx]
	copy(r.buf[idx:], r.buf[idx+1:])
	r.buf[len(r.buf)-1] = Message{}
	r.buf = r.buf[:len(r.buf)-1]
	return m
}

func (r *msgRing) clear() {
	r.buf = nil
	r.head = 0
}

// push appends m to its constraint bucket (FIFO within a level).
//
//ipvet:hotpath per-message enqueue on the scheduler's mailbox
func (q *msgQueue) push(m Message) {
	q.count++
	if !m.Constraint.Set {
		q.plain.push(m)
		return
	}
	lvl := m.Constraint.Level
	for i := range q.buckets {
		if q.buckets[i].level == lvl {
			q.buckets[i].ring.push(m)
			return
		}
		if q.buckets[i].level < lvl {
			// Insert a new bucket, keeping descending order.
			q.buckets = append(q.buckets, msgBucket{})
			copy(q.buckets[i+1:], q.buckets[i:])
			q.buckets[i] = msgBucket{level: lvl}
			q.buckets[i].ring.push(m)
			return
		}
	}
	q.buckets = append(q.buckets, msgBucket{level: lvl})
	q.buckets[len(q.buckets)-1].ring.push(m)
}

// bestConstraint reports the highest constraint level among queued messages.
//
//ipvet:hotpath consulted on every scheduling decision
func (q *msgQueue) bestConstraint() (Priority, bool) {
	for i := range q.buckets {
		if q.buckets[i].ring.len() > 0 {
			return q.buckets[i].level, true
		}
	}
	return 0, false
}

// popBest removes and returns the next message in delivery order: highest
// constraint level first, FIFO within a level, unconstrained last.
//
//ipvet:hotpath per-message dequeue on the scheduler's mailbox
func (q *msgQueue) popBest() (Message, bool) {
	for i := range q.buckets {
		if q.buckets[i].ring.len() > 0 {
			q.count--
			return q.buckets[i].ring.pop(), true
		}
	}
	if q.plain.len() > 0 {
		q.count--
		return q.plain.pop(), true
	}
	return Message{}, false
}

// popMatch removes and returns the first message in delivery order that
// satisfies pred (nil matches all).
func (q *msgQueue) popMatch(pred func(Message) bool) (Message, bool) {
	if pred == nil {
		return q.popBest()
	}
	for i := range q.buckets {
		r := &q.buckets[i].ring
		for j := 0; j < r.len(); j++ {
			if pred(*r.at(j)) {
				q.count--
				return r.removeAt(j), true
			}
		}
	}
	for j := 0; j < q.plain.len(); j++ {
		if pred(*q.plain.at(j)) {
			q.count--
			return q.plain.removeAt(j), true
		}
	}
	return Message{}, false
}

// anyMatch reports whether a queued message satisfies pred (nil = any).
func (q *msgQueue) anyMatch(pred func(Message) bool) bool {
	if pred == nil {
		return q.count > 0
	}
	for i := range q.buckets {
		r := &q.buckets[i].ring
		for j := 0; j < r.len(); j++ {
			if pred(*r.at(j)) {
				return true
			}
		}
	}
	for j := 0; j < q.plain.len(); j++ {
		if pred(*q.plain.at(j)) {
			return true
		}
	}
	return false
}

func (q *msgQueue) len() int { return q.count }

func (q *msgQueue) clear() {
	q.plain.clear()
	q.buckets = nil
	q.count = 0
}
