package uthread

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// scanBestConstraint recomputes the best queued constraint from scratch by
// walking every pending message, independent of the bucket index.
func scanBestConstraint(q *msgQueue) (Priority, bool) {
	best := Priority(0)
	found := false
	consider := func(m *Message) {
		if m.Constraint.Set && (!found || m.Constraint.Level > best) {
			best, found = m.Constraint.Level, true
		}
	}
	for i := range q.buckets {
		r := &q.buckets[i].ring
		for j := 0; j < r.len(); j++ {
			consider(r.at(j))
		}
	}
	for j := 0; j < q.plain.len(); j++ {
		consider(q.plain.at(j))
	}
	return best, found
}

// recomputeEffectiveLocked re-derives the §4 effective priority from first
// principles (the pre-cache definition), for cross-checking the cache.
func recomputeEffectiveLocked(t *Thread) Priority {
	p := t.static
	best, found := scanBestConstraint(&t.mq)
	switch {
	case t.current.Set:
		p = t.current.Level
	case t.state == stateReady:
		if found {
			p = best
		}
	}
	if t.sched.inherit && found && best > p {
		p = best
	}
	return p
}

// TestCachedPriorityNeverDiverges runs a randomized message storm and
// repeatedly asserts, under the scheduler lock, that every thread queued in
// the ready heap carries a cached effective priority identical to a
// from-scratch recomputation — with and without priority inheritance.
func TestCachedPriorityNeverDiverges(t *testing.T) {
	for _, inherit := range []bool{true, false} {
		name := "inherit"
		opts := []Option{}
		if !inherit {
			name = "no-inherit"
			opts = append(opts, WithoutPriorityInheritance())
		}
		t.Run(name, func(t *testing.T) {
			s := New(opts...)
			const nThreads = 8
			const kindWork Kind = KindUserBase + 1
			const kindQuit Kind = KindUserBase + 2
			statics := []Priority{PriorityLow, PriorityNormal, PriorityHigh}
			constraints := []Constraint{
				NoConstraint, NoConstraint,
				At(PriorityLow), At(PriorityNormal), At(PriorityHigh), At(PriorityControl),
			}
			var mu sync.Mutex
			rng := rand.New(rand.NewSource(20011112))
			var threads []*Thread
			budget := 4000
			code := func(th *Thread, m Message) Disposition {
				if m.Kind == kindQuit {
					return Terminate
				}
				mu.Lock()
				if budget <= 0 {
					// Drain the storm: release every peer, then leave.
					peers := append([]*Thread(nil), threads...)
					mu.Unlock()
					for _, p := range peers {
						if p != th {
							th.Send(p, Message{Kind: kindQuit, Constraint: At(PriorityControl)})
						}
					}
					return Terminate
				}
				budget--
				dst := threads[rng.Intn(len(threads))]
				c := constraints[rng.Intn(len(constraints))]
				doYield := rng.Intn(4) == 0
				mu.Unlock()
				th.Send(dst, Message{Kind: kindWork, Constraint: c})
				if doYield {
					th.Yield()
				}
				return Continue
			}
			for i := 0; i < nThreads; i++ {
				threads = append(threads, s.Spawn("w", statics[i%len(statics)], code))
			}
			for i, th := range threads {
				s.Post(th, Message{Kind: kindWork, Constraint: constraints[i%len(constraints)]})
			}
			done := s.RunBackground()
			checks := 0
			for {
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if checks == 0 {
						t.Fatal("workload finished before any invariant check ran")
					}
					t.Logf("verified cache on %d snapshots", checks)
					return
				default:
				}
				s.mu.Lock()
				for _, th := range s.ready.items {
					if got, want := th.effPrio, recomputeEffectiveLocked(th); got != want {
						s.mu.Unlock()
						t.Fatalf("thread %q: cached effective priority %d, recomputed %d", th.name, got, want)
					}
				}
				s.mu.Unlock()
				checks++
				time.Sleep(50 * time.Microsecond)
			}
		})
	}
}

// refQueue is the pre-bucketing reference implementation of the message
// queue: a flat arrival-ordered slice scanned with the old constraintLess
// rule.  msgQueue must deliver in exactly the same order.
type refQueue []Message

func refLess(a, b Constraint) bool {
	if a.Set != b.Set {
		return b.Set
	}
	if a.Set && a.Level != b.Level {
		return b.Level > a.Level
	}
	return false
}

func (q *refQueue) popMatch(pred func(Message) bool) (Message, bool) {
	bestIdx := -1
	for i := range *q {
		m := &(*q)[i]
		if pred != nil && !pred(*m) {
			continue
		}
		if bestIdx < 0 || refLess((*q)[bestIdx].Constraint, m.Constraint) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Message{}, false
	}
	m := (*q)[bestIdx]
	*q = append((*q)[:bestIdx], (*q)[bestIdx+1:]...)
	return m, true
}

// TestMsgQueueMatchesReference drives the bucketed queue and the reference
// queue with an identical random operation stream and requires identical
// delivery order, best-constraint answers and lengths throughout.
func TestMsgQueueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	levels := []Constraint{
		NoConstraint,
		At(PriorityLow), At(PriorityNormal), At(PriorityHigh), At(PriorityControl),
	}
	preds := []func(Message) bool{
		nil,
		func(m Message) bool { return m.Kind == KindTimer },
		func(m Message) bool { return m.seq%3 == 0 },
		func(m Message) bool { return m.Constraint.Set },
	}
	var q msgQueue
	var ref refQueue
	var seq uint64
	for op := 0; op < 20000; op++ {
		if rng.Intn(2) == 0 || q.len() == 0 {
			seq++
			kind := KindUserBase
			if rng.Intn(5) == 0 {
				kind = KindTimer
			}
			m := Message{Kind: kind, Constraint: levels[rng.Intn(len(levels))], seq: seq}
			q.push(m)
			ref = append(ref, m)
		} else {
			pred := preds[rng.Intn(len(preds))]
			got, gok := q.popMatch(pred)
			want, wok := ref.popMatch(pred)
			if gok != wok || got.seq != want.seq {
				t.Fatalf("op %d: popMatch got (seq=%d,%v), reference (seq=%d,%v)",
					op, got.seq, gok, want.seq, wok)
			}
		}
		if q.len() != len(ref) {
			t.Fatalf("op %d: len %d, reference %d", op, q.len(), len(ref))
		}
		gb, gf := q.bestConstraint()
		wb, wf := scanBestConstraint(&q)
		if gb != wb || gf != wf {
			t.Fatalf("op %d: bestConstraint (%d,%v), scan (%d,%v)", op, gb, gf, wb, wf)
		}
		if q.anyMatch(nil) != (len(ref) > 0) {
			t.Fatalf("op %d: anyMatch(nil) inconsistent with length %d", op, len(ref))
		}
	}
}

// TestTimerCancelO1Semantics pins the cancel contract after the token-map
// change: cancel is true exactly once per pending timer, false after firing,
// and cancelled timers never fire.
func TestTimerCancelO1Semantics(t *testing.T) {
	s := New()
	fired := make(map[TimerToken]bool)
	var toks []TimerToken
	th := s.Spawn("sink", PriorityNormal, func(th *Thread, m Message) Disposition {
		if m.Kind == KindTimer {
			fired[m.Data.(TimerToken)] = true
		}
		if len(fired) == 50 {
			return Terminate
		}
		return Continue
	})
	for i := 0; i < 100; i++ {
		toks = append(toks, s.TimerAfter(time.Duration(i+1)*time.Millisecond, th))
	}
	// Cancel every second timer; each cancel must report pending exactly once.
	for i := 0; i < 100; i += 2 {
		if !s.CancelTimer(toks[i]) {
			t.Fatalf("timer %d: first cancel reported not pending", i)
		}
		if s.CancelTimer(toks[i]) {
			t.Fatalf("timer %d: second cancel reported pending", i)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tok := range toks {
		if i%2 == 0 && fired[tok] {
			t.Fatalf("cancelled timer %d fired", i)
		}
		if i%2 == 1 && !fired[tok] {
			t.Fatalf("live timer %d never fired", i)
		}
	}
	// After firing, cancel must report not-pending.
	if s.CancelTimer(toks[1]) {
		t.Error("cancel after firing reported pending")
	}
}

// TestMsgRingBoundedByDepth guards the compaction in msgRing.pop: a mailbox
// that always holds a few pending messages (producer persistently ahead of
// its consumer) must keep O(peak depth) memory, not grow with total traffic.
func TestMsgRingBoundedByDepth(t *testing.T) {
	var q msgQueue
	var seq uint64
	for i := 0; i < 200_000; i++ {
		seq++
		q.push(Message{Kind: KindUserBase, seq: seq})
		if q.len() > 4 {
			if _, ok := q.popMatch(nil); !ok {
				t.Fatal("popMatch failed on non-empty queue")
			}
		}
	}
	if c := cap(q.plain.buf); c > 1024 {
		t.Fatalf("ring backing array grew to %d slots for a depth-4 queue", c)
	}
}
