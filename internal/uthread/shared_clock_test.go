package uthread

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"infopipes/internal/vclock"
)

const kindKick Kind = KindUserBase + 90

// TestPlainVirtualRefusesSecondScheduler: the seed silently mis-simulated
// two schedulers on one plain Virtual (an idle scheduler advanced time past
// the peer's earlier deadlines).  The configuration is now refused loudly.
func TestPlainVirtualRefusesSecondScheduler(t *testing.T) {
	clk := vclock.NewVirtual()
	sA := New(WithClock(clk))
	running := make(chan struct{})
	thA := sA.Spawn("holder", PriorityNormal, func(th *Thread, m Message) Disposition {
		close(running)
		th.ReceiveMatch(func(m Message) bool { return m.Kind == kindKick+1 })
		return Terminate
	})
	sA.AddExternalSource() // the release kick arrives from the test goroutine
	sA.Post(thA, Message{Kind: kindKick})
	errA := sA.RunBackground()
	<-running // sA has bound the clock and is executing threads

	sB := New(WithClock(clk))
	if err := sB.Run(); !errors.Is(err, vclock.ErrSharedVirtual) {
		t.Fatalf("second scheduler Run = %v, want ErrSharedVirtual", err)
	}

	sA.Post(thA, Message{Kind: kindKick + 1})
	sA.ReleaseExternalSource()
	if err := <-errA; err != nil {
		t.Fatalf("first scheduler: %v", err)
	}

	// Sequential reuse stays allowed: sA released the clock on shutdown.
	sC := New(WithClock(clk))
	if err := sC.Run(); err != nil {
		t.Fatalf("sequential reuse after shutdown: %v", err)
	}
}

// sleeperTrace runs one scheduler per name on a shared GroupVirtual; each
// scheduler's thread sleeps to its offsets in turn and records "name@offset"
// into a shared log.  Returns the joined log.
func sleeperTrace(t *testing.T, plan map[string][]time.Duration) string {
	t.Helper()
	g := vclock.NewGroupVirtual()
	var mu sync.Mutex
	var log []string

	type member struct {
		s  *Scheduler
		th *Thread
	}
	names := make([]string, 0, len(plan))
	for name := range plan {
		names = append(names, name)
	}
	// Deterministic construction order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	members := make([]member, 0, len(names))
	for _, name := range names {
		name := name
		offsets := plan[name]
		s := New(WithClock(g.Member()))
		th := s.Spawn(name, PriorityNormal, func(th *Thread, m Message) Disposition {
			for _, off := range offsets {
				th.SleepUntil(vclock.Epoch.Add(off))
				mu.Lock()
				log = append(log, fmt.Sprintf("%s@%v", name, th.Scheduler().Now().Sub(vclock.Epoch)))
				mu.Unlock()
			}
			return Terminate
		})
		members = append(members, member{s: s, th: th})
	}
	for _, m := range members {
		m.s.Post(m.th, Message{Kind: kindKick})
	}
	var errcs []<-chan error
	for _, m := range members {
		errcs = append(errcs, m.s.RunBackground())
	}
	for i, ch := range errcs {
		if err := <-ch; err != nil {
			t.Fatalf("scheduler %s: %v", names[i], err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return strings.Join(log, "\n")
}

// TestGroupClockFiresInGlobalDeadlineOrder is the shared-clock regression
// test: two schedulers with interleaved timer deadlines fire them in global
// deadline order, deterministically — byte-identical traces across 10 runs.
// On the seed, whichever scheduler idled first yanked the shared Virtual
// forward past the peer's earlier deadline, so A's 30ms timer could fire at
// virtual 40 or 60ms depending on goroutine interleaving.
func TestGroupClockFiresInGlobalDeadlineOrder(t *testing.T) {
	plan := map[string][]time.Duration{
		"A": {10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond},
		"B": {20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond},
	}
	want := strings.Join([]string{
		"A@10ms", "B@20ms", "A@30ms", "B@40ms", "A@50ms", "B@60ms",
	}, "\n")
	for run := 0; run < 10; run++ {
		got := sleeperTrace(t, plan)
		if got != want {
			t.Fatalf("run %d trace:\n%s\nwant:\n%s", run, got, want)
		}
	}
}

// TestGroupClockThreeWayInterleave drives three schedulers whose deadlines
// interleave irregularly, including a member that finishes early and leaves.
func TestGroupClockThreeWayInterleave(t *testing.T) {
	plan := map[string][]time.Duration{
		"A": {5 * time.Millisecond, 35 * time.Millisecond},
		"B": {10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond},
		"C": {15 * time.Millisecond},
	}
	want := strings.Join([]string{
		"A@5ms", "B@10ms", "C@15ms", "B@20ms", "B@30ms", "A@35ms", "B@40ms",
	}, "\n")
	for run := 0; run < 5; run++ {
		if got := sleeperTrace(t, plan); got != want {
			t.Fatalf("run %d trace:\n%s\nwant:\n%s", run, got, want)
		}
	}
}

// TestGroupClockIdleMemberDoesNotHoldTimeBack: a scheduler that is idle with
// registered external sources (no deadline of its own) must not block its
// peer's timers from advancing the shared clock.
func TestGroupClockIdleMemberDoesNotHoldTimeBack(t *testing.T) {
	g := vclock.NewGroupVirtual()
	idle := New(WithClock(g.Member()))
	idle.AddExternalSource() // e.g. a composed pipeline awaiting traffic
	idleErr := idle.RunBackground()

	busy := New(WithClock(g.Member()))
	fired := make(chan time.Duration, 1)
	th := busy.Spawn("sleeper", PriorityNormal, func(th *Thread, m Message) Disposition {
		th.SleepUntil(vclock.Epoch.Add(25 * time.Millisecond))
		fired <- th.Scheduler().Now().Sub(vclock.Epoch)
		return Terminate
	})
	busy.Post(th, Message{Kind: kindKick})
	if err := busy.Run(); err != nil {
		t.Fatalf("busy scheduler: %v", err)
	}
	select {
	case d := <-fired:
		if d != 25*time.Millisecond {
			t.Fatalf("timer fired at %v, want 25ms", d)
		}
	default:
		t.Fatal("timer never fired")
	}
	idle.Stop()
	if err := <-idleErr; err != nil {
		t.Fatalf("idle scheduler: %v", err)
	}
}

// TestTimerHeapPurgedOnOwnerDeath: timers addressed to a thread die with it
// — purged at termination, refused at push time afterwards.
func TestTimerHeapPurgedOnOwnerDeath(t *testing.T) {
	s := New()
	th := s.Spawn("victim", PriorityNormal, func(*Thread, Message) Disposition {
		return Terminate
	})
	for i := 0; i < 5; i++ {
		if tok := s.TimerAt(s.Now().Add(time.Duration(i+1)*time.Hour), th); tok == 0 {
			t.Fatalf("timer %d refused for a live thread", i)
		}
	}
	if got := s.PendingTimers(); got != 5 {
		t.Fatalf("PendingTimers = %d before death, want 5", got)
	}
	s.Post(th, Message{Kind: kindKick}) // one message, thread terminates
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := s.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d after owner died, want 0 (stale timers linger in the heap)", got)
	}
	if tok := s.TimerAt(s.Now().Add(time.Hour), th); tok != 0 {
		t.Fatalf("TimerAt for a terminated thread returned live token %d, want 0", tok)
	}
	if s.CancelTimer(0) {
		t.Fatal("CancelTimer(0) reported a pending timer")
	}
	if got := s.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d after dead-destination push, want 0", got)
	}
}
