package uthread

import (
	"fmt"
	"time"
)

type threadState int

const (
	stateBlocked threadState = iota + 1 // waiting for a message
	stateReady                          // runnable, queued for the CPU
	stateRunning                        // holds the run token
	stateTerminated
)

// Thread is a user-level thread: a code function plus a message queue.
// All methods in the "thread-side API" group (Receive*, Send, Call, Reply,
// Yield, Sleep*, …) must only be called from within the thread's own code
// function; the scheduler-side API (on Scheduler) is safe from anywhere.
type Thread struct {
	id     uint64
	name   string
	sched  *Scheduler
	static Priority
	class  *SchedClass // weighted-fair class; nil = default (no accounting)
	code   CodeFunc

	// All fields below are protected by sched.mu unless noted.
	state    threadState
	mq       msgQueue
	waitPred func(Message) bool // non-nil while blocked on a selective receive
	heapIdx  int                // position in the ready queue, -1 if absent
	readySeq uint64             // ready-queue arrival order (FIFO tiebreak)
	effPrio  Priority           // cached effective priority while queued
	vtSnap   int64              // cached weighted-fair virtual-time stamp while queued

	current Constraint // constraint of the message being processed

	// ctrlMatch/ctrlHandle implement §3.2/§4: control events are delivered
	// even while the thread is blocked inside a synchronous Call (push/pull
	// between coroutines).  Set via SetControlDispatch; read only by the
	// owning goroutine.
	ctrlMatch  func(Message) bool
	ctrlHandle func(*Thread, Message)

	holding bool          // owns the run token (owning goroutine only)
	gate    chan struct{} // scheduler grants the token here
	done    chan struct{} // closed when the goroutine exits
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// ID returns the thread's unique id within its scheduler.
func (t *Thread) ID() uint64 { return t.id }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.sched }

// StaticPriority returns the priority given at Spawn.
func (t *Thread) StaticPriority() Priority { return t.static }

// Class returns the thread's weighted-fair scheduling class (nil = default).
func (t *Thread) Class() *SchedClass { return t.class }

// CurrentConstraint returns the constraint of the message the thread is
// currently processing (thread-side API).
func (t *Thread) CurrentConstraint() Constraint { return t.current }

// SetControlDispatch installs the control-event hook: while the thread is
// blocked in Call/Get/Put, messages matching match are handed to handle and
// the thread resumes waiting (paper §4: "the thread blocks waiting for
// either a control message or the data reply message").  Thread-side API.
func (t *Thread) SetControlDispatch(match func(Message) bool, handle func(*Thread, Message)) {
	t.ctrlMatch = match
	t.ctrlHandle = handle
}

// effectivePriorityLocked derives the scheduling priority per §4: the
// constraint of the message being processed; else, for a waiting thread, the
// constraint of the best queued message; else the static priority.  With
// inheritance enabled, a higher-constraint pending message raises the
// priority further (priority inheritance, avoiding inversion).
func (t *Thread) effectivePriorityLocked() Priority {
	p := t.static
	switch {
	case t.current.Set:
		p = t.current.Level
	case t.state == stateReady:
		if c, ok := t.bestQueuedConstraintLocked(); ok {
			p = c
		}
	}
	if t.sched.inherit {
		if c, ok := t.bestQueuedConstraintLocked(); ok && c > p {
			p = c
		}
	}
	return p
}

func (t *Thread) bestQueuedConstraintLocked() (Priority, bool) {
	return t.mq.bestConstraint()
}

// dequeueLocked removes and returns the best pending message matching pred
// (nil matches all).  Messages are delivered highest-constraint first and
// FIFO within a level, so control events (high constraints) overtake data.
func (t *Thread) dequeueLocked(pred func(Message) bool) (Message, bool) {
	return t.mq.popMatch(pred)
}

// run is the thread goroutine: the top-level message loop described in §4.
func (t *Thread) run() {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			if _, stopped := r.(haltSignal); stopped {
				return // clean shutdown unwind
			}
			t.sched.fail(fmt.Errorf("uthread %q: code function panicked: %v", t.name, r))
			if t.holding {
				// fail just closed stopCh, so Run may already have taken
				// the stop arm of its handoff select and stopped listening
				// for the token — a bare send would deadlock shutdown.
				t.holding = false
				select {
				case t.sched.yielded <- struct{}{}:
				case <-t.sched.stopCh:
				}
			}
		}
	}()
	for {
		msg := t.awaitMessage(nil)
		t.current = msg.Constraint
		disp := t.code(t, msg)
		t.current = Constraint{}
		if disp == Terminate {
			t.terminate()
			return
		}
		t.preemptionPoint(false) // message boundary: round-robin among equals
	}
}

// terminate marks the thread dead and returns the token.  Owning goroutine.
func (t *Thread) terminate() {
	s := t.sched
	s.mu.Lock()
	t.state = stateTerminated
	t.mq.clear()
	s.timers.purgeDst(t) // a dead thread's timers must not linger in the heap
	delete(s.threads, t.id)
	s.live--
	s.mu.Unlock()
	if t.holding {
		t.holding = false
		select {
		case s.yielded <- struct{}{}:
		case <-s.stopCh:
		}
	}
}

// awaitMessage blocks until a message matching pred is available and returns
// it.  It is the single suspension primitive: Receive, Call replies, timer
// waits and coroutine handoffs all go through here.  Owning goroutine only.
//
// A message may only be consumed while the thread holds the run token; the
// not-holding branch covers goroutine startup, where a message (or even a
// grant) can already be waiting before the goroutine first runs.
func (t *Thread) awaitMessage(pred func(Message) bool) Message {
	s := t.sched
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			panic(haltSignal{})
		}
		if t.holding {
			if m, ok := t.dequeueLocked(pred); ok {
				s.mu.Unlock()
				return m
			}
			t.state = stateBlocked
			t.waitPred = pred
		} else {
			switch t.state {
			case stateReady, stateRunning:
				// A grant is queued or already in flight; pick up the
				// token first, then consume the message.
			case stateBlocked:
				if t.peekLocked(pred) {
					t.state = stateReady
					t.waitPred = nil
					s.ready.push(t)
				} else {
					t.waitPred = pred
				}
			case stateTerminated:
				s.mu.Unlock()
				panic(haltSignal{})
			}
		}
		s.mu.Unlock()
		t.yieldToken()
	}
}

// peekLocked reports whether a queued message matches pred (nil = any).
func (t *Thread) peekLocked(pred func(Message) bool) bool {
	return t.mq.anyMatch(pred)
}

// yieldToken returns the run token to the scheduler (if held) and blocks
// until it is granted again.  Owning goroutine only.
func (t *Thread) yieldToken() {
	s := t.sched
	if t.holding {
		t.holding = false
		select {
		case s.yielded <- struct{}{}:
		case <-s.stopCh:
			panic(haltSignal{})
		}
	}
	select {
	case <-t.gate:
		t.holding = true
	case <-s.stopCh:
		panic(haltSignal{})
	}
}

// preemptionPoint offers the CPU to a higher-priority ready thread.  When
// allowEqual is true, equal-priority threads are also given a turn
// (round-robin at message boundaries).  Owning goroutine only.
func (t *Thread) preemptionPoint(strictOnly bool) {
	s := t.sched
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(haltSignal{})
	}
	top := s.ready.peekMax()
	if top == nil {
		s.mu.Unlock()
		return
	}
	mine := t.effectivePriorityLocked()
	theirs := top.effectivePriorityLocked()
	preempt := theirs > mine || (!strictOnly && theirs == mine)
	if !preempt {
		s.mu.Unlock()
		return
	}
	t.state = stateReady
	s.ready.push(t)
	s.mu.Unlock()
	t.yieldToken()
}

// Yield voluntarily offers the CPU to any ready thread of equal or higher
// effective priority.  Thread-side API.
func (t *Thread) Yield() { t.preemptionPoint(false) }

// Receive suspends until the next message (in constraint order) arrives and
// returns it.  Thread-side API.
func (t *Thread) Receive() Message { return t.awaitMessage(nil) }

// ReceiveMatch suspends until a message satisfying pred arrives and returns
// it; other messages stay queued (selective receive).  Thread-side API.
func (t *Thread) ReceiveMatch(pred func(Message) bool) Message {
	return t.awaitMessage(pred)
}

// TryReceive returns the best queued message matching pred (nil = any)
// without blocking.  Thread-side API.
func (t *Thread) TryReceive(pred func(Message) bool) (Message, bool) {
	s := t.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	return t.dequeueLocked(pred)
}

// Send delivers msg to dst asynchronously.  If msg carries no constraint it
// inherits the constraint of the message t is currently processing — the §4
// rule that lets a pump's constraint govern its whole coroutine set.  If the
// receiver becomes runnable at a strictly higher effective priority the
// sender is preempted (communication points are switch points).
// Thread-side API.
func (t *Thread) Send(dst *Thread, msg Message) {
	t.sendInternal(dst, msg)
	t.preemptionPoint(true)
}

func (t *Thread) sendInternal(dst *Thread, msg Message) {
	s := t.sched
	msg.From = t
	if !msg.Constraint.Set {
		msg.Constraint = t.current
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		panic(haltSignal{})
	}
	if dst == nil || dst.state == stateTerminated {
		s.mu.Unlock()
		return
	}
	s.enqueueLocked(dst, msg)
	s.mu.Unlock()
}

// Call sends msg to dst and suspends until the matching KindReply arrives,
// dispatching any control messages that arrive in between through the hook
// installed with SetControlDispatch (§4).  Thread-side API.
func (t *Thread) Call(dst *Thread, msg Message) Message {
	s := t.sched
	s.mu.Lock()
	s.nextCall++
	id := s.nextCall
	s.mu.Unlock()
	msg.call = id
	t.sendInternal(dst, msg)
	return t.awaitReply(id)
}

// awaitReply waits for the reply with correlation id, interleaving control
// dispatch.  Owning goroutine only.
func (t *Thread) awaitReply(id uint64) Message {
	for {
		m := t.awaitMessage(func(m Message) bool {
			if m.Kind == KindReply && m.call == id {
				return true
			}
			return t.ctrlMatch != nil && t.ctrlMatch(m)
		})
		if m.Kind == KindReply && m.call == id {
			return m
		}
		t.dispatchControl(m)
	}
}

// DispatchControl runs the installed control hook on m if it matches,
// reporting whether it was dispatched.  Framework stages (buffers, netpipe
// endpoints) that implement their own blocking waits use it to keep
// components responsive to control events while blocked (§3.2).
// Thread-side API.
func (t *Thread) DispatchControl(m Message) bool {
	if t.ctrlMatch == nil || !t.ctrlMatch(m) {
		return false
	}
	t.dispatchControl(m)
	return true
}

// dispatchControl runs the control hook on m at control priority.
func (t *Thread) dispatchControl(m Message) {
	if t.ctrlHandle == nil {
		return
	}
	saved := t.current
	if m.Constraint.Set {
		t.current = m.Constraint
	}
	t.ctrlHandle(t, m)
	t.current = saved
}

// Reply answers a synchronous Call previously received as req.
// Thread-side API.
func (t *Thread) Reply(req Message, data any) {
	if req.call == 0 || req.From == nil {
		return
	}
	t.sendInternal(req.From, Message{Kind: KindReply, Data: data, call: req.call})
	t.preemptionPoint(true)
}

// SleepFor suspends the thread for d on the scheduler's clock, dispatching
// control messages that arrive in the meantime.  Thread-side API.
func (t *Thread) SleepFor(d time.Duration) {
	t.SleepUntil(t.sched.clock.Now().Add(d))
}

// SleepUntil suspends the thread until instant at on the scheduler's clock,
// dispatching control messages that arrive in the meantime.  Thread-side API.
func (t *Thread) SleepUntil(at time.Time) {
	if !at.After(t.sched.clock.Now()) {
		t.Yield()
		return
	}
	tok := t.sched.TimerAt(at, t)
	for {
		m := t.awaitMessage(func(m Message) bool {
			if m.Kind == KindTimer {
				tt, ok := m.Data.(TimerToken)
				return ok && tt == tok
			}
			return t.ctrlMatch != nil && t.ctrlMatch(m)
		})
		if m.Kind == KindTimer {
			return
		}
		t.dispatchControl(m)
	}
}

// SleepUntilOr suspends the thread until instant at, dispatching control
// messages as they arrive.  After each control dispatch, cancelled is
// consulted; if it reports true the sleep is abandoned early and
// SleepUntilOr returns false.  Returns true when the full deadline was
// slept.  Thread-side API.
func (t *Thread) SleepUntilOr(at time.Time, cancelled func() bool) bool {
	if cancelled != nil && cancelled() {
		return false
	}
	if !at.After(t.sched.clock.Now()) {
		t.Yield()
		return true
	}
	tok := t.sched.TimerAt(at, t)
	for {
		m := t.awaitMessage(func(m Message) bool {
			if m.Kind == KindTimer {
				tt, ok := m.Data.(TimerToken)
				return ok && tt == tok
			}
			return t.ctrlMatch != nil && t.ctrlMatch(m)
		})
		if m.Kind == KindTimer {
			return true
		}
		t.dispatchControl(m)
		if cancelled != nil && cancelled() {
			t.sched.CancelTimer(tok)
			return false
		}
	}
}

// QueueLen reports the number of pending messages (diagnostics).
func (t *Thread) QueueLen() int {
	t.sched.mu.Lock()
	defer t.sched.mu.Unlock()
	return t.mq.len()
}

// Terminated reports whether the thread has ended.
func (t *Thread) Terminated() bool {
	t.sched.mu.Lock()
	defer t.sched.mu.Unlock()
	return t.state == stateTerminated
}
