// Package uthread implements the message-based user-level thread package
// that the Infopipe middleware is built on (paper §4, refs [11,12,14]).
//
// Each thread consists of a code function and a queue of incoming messages.
// Unlike conventional threads, the code function is not called at thread
// creation time but each time a message is received.  After processing a
// message the code function returns, and the thread is terminated only when
// indicated by the return code.  Code functions resemble event handlers but
// may suspend waiting for other messages (selective receive) and may be
// preempted at communication points.  Threads work like extended finite
// state machines.
//
// Inter-thread communication is message passing: asynchronous Send, or
// synchronous Call when the sender has nothing to do until a reply arrives.
// Timer signals are mapped to messages by the scheduler, so all events are
// handled through one uniform message interface.
//
// Scheduling follows the paper: threads carry static priorities and messages
// carry optional constraints.  The effective priority of a thread is derived
// from the constraint of the message it is currently processing or, if it is
// waiting for the CPU, from the constraint of the best message in its queue;
// without a constraint the static priority applies.  A priority-inheritance
// scheme raises a thread's effective priority when a higher-constraint
// message is pending, avoiding priority inversion.
//
// The Go realisation gates one goroutine per thread behind a run token so
// that exactly one thread executes at any instant — the observable semantics
// of the paper's uniprocessor user-level package.  A context switch is a
// token handoff (two channel operations, on the order of a microsecond);
// a direct function call inside a thread costs nanoseconds.  That two-orders-
// of-magnitude gap is the quantitative claim of §4 and is reproduced by
// BenchmarkContextSwitch / BenchmarkDirectCall.
package uthread

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"infopipes/internal/trace"
	"infopipes/internal/vclock"
)

// Priority orders threads: larger values run first.
type Priority int

// Standard priority levels used by the Infopipe layer.  Applications may use
// any values; only the order matters.
const (
	PriorityLow     Priority = 10
	PriorityNormal  Priority = 20
	PriorityHigh    Priority = 30
	PriorityControl Priority = 100 // control-event handling outranks data processing (§2.2)
)

// Constraint is an optional scheduling constraint attached to a message
// (paper §4).  A constraint overrides the static priority of the thread
// processing the message.  The zero value means "no constraint".
type Constraint struct {
	Level Priority
	Set   bool
}

// At returns a constraint at the given level.
func At(p Priority) Constraint { return Constraint{Level: p, Set: true} }

// NoConstraint is the absent constraint.
var NoConstraint = Constraint{}

// Kind discriminates message types.  The runtime reserves the kinds below;
// applications must use kinds >= KindUserBase.
type Kind int

const (
	// KindTimer is delivered when a timer registered with the scheduler
	// expires.  Data holds the token returned by TimerAfter.
	KindTimer Kind = iota + 1
	// KindReply carries the response to a synchronous Call.
	KindReply
	// KindCoroData carries a data item across a coroutine link.
	KindCoroData
	// KindCoroResume resumes the peer coroutine blocked in a Put.
	KindCoroResume
	// KindUserBase is the first kind available to applications.
	KindUserBase Kind = 64
)

// Message is the unit of inter-thread communication.
type Message struct {
	Kind       Kind
	From       *Thread // sending thread; nil for external posts and timers
	Data       any
	Constraint Constraint

	call uint64 // correlation id: nonzero marks a Call or its KindReply
	seq  uint64 // arrival order, for FIFO stability within a priority level
}

// CallID reports the correlation id if the message is a synchronous call
// that expects a Reply, and 0 otherwise.
func (m Message) CallID() uint64 { return m.call }

// Disposition is returned by a code function to tell the scheduler whether
// the thread continues to live.
type Disposition int

const (
	// Continue keeps the thread alive, waiting for its next message.
	Continue Disposition = iota + 1
	// Terminate ends the thread after the current message.
	Terminate
)

// CodeFunc is the body of a thread.  It is invoked once per received
// message and runs on the thread's own goroutine while the thread holds the
// scheduler's run token.  It may block in t.Receive, t.Call, t.Sleep, etc.
type CodeFunc func(t *Thread, msg Message) Disposition

// ErrDeadlock is returned by Run when live threads remain but none can ever
// become runnable (no pending timers and no registered external sources).
var ErrDeadlock = errors.New("uthread: deadlock: all threads blocked")

// ErrStopped is returned from blocking thread operations when the scheduler
// is shut down underneath them.
var ErrStopped = errors.New("uthread: scheduler stopped")

// errHalt is the sentinel used internally to unwind a thread goroutine when
// the scheduler stops.  It never escapes the package.
type haltSignal struct{}

// Stats is a snapshot of scheduler activity counters.
type Stats struct {
	Switches int64 // run-token handoffs to a different thread than last time
	Grants   int64 // all run-token handoffs
	Messages int64 // messages enqueued (Send, Post, Call, Reply, timers)
	Timers   int64 // timer messages fired
}

// Scheduler owns a set of user-level threads and runs them one at a time in
// effective-priority order.  Construct with New; the zero value is not
// usable.
type Scheduler struct {
	clock vclock.Clock

	mu       sync.Mutex
	ready    readyQueue
	timers   timerQueue
	threads  map[uint64]*Thread
	live     int
	extRefs  int
	stopped  bool
	err      error
	nextID   uint64
	nextSeq  uint64
	nextCall uint64
	nextTok  uint64
	inherit  bool
	running  *Thread

	wake    chan struct{} // signals the idle scheduler (size 1)
	yielded chan struct{} // running thread returns the token
	stopCh  chan struct{} // closed exactly once on stop

	// notifyWake, when non-nil, announces a wake to a coordinated group
	// clock BEFORE the channel signal, so the group's advance decision
	// never races the wake (vclock.WakeNotifier).  Set once in New.
	notifyWake func()

	lastRun  *Thread
	switches trace.Counter
	grants   trace.Counter
	messages trace.Counter
	timerCnt trace.Counter
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithClock selects the time base (default: deterministic virtual clock).
func WithClock(c vclock.Clock) Option {
	return func(s *Scheduler) { s.clock = c }
}

// WithoutPriorityInheritance disables the priority-inheritance scheme
// (used by the ablation experiments; the paper's package provides it).
func WithoutPriorityInheritance() Option {
	return func(s *Scheduler) { s.inherit = false }
}

// New creates a scheduler.  By default it uses a virtual clock starting at
// vclock.Epoch and enables priority inheritance.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		clock:   vclock.NewVirtual(),
		threads: make(map[uint64]*Thread),
		inherit: true,
		wake:    make(chan struct{}, 1),
		yielded: make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if n, ok := s.clock.(vclock.WakeNotifier); ok {
		s.notifyWake = n.NotifyWake
	}
	return s
}

// Clock returns the scheduler's time base.
func (s *Scheduler) Clock() vclock.Clock { return s.clock }

// Now reports the current instant on the scheduler's clock.
func (s *Scheduler) Now() time.Time { return s.clock.Now() }

// Stats returns a snapshot of the activity counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Switches: s.switches.Value(),
		Grants:   s.grants.Value(),
		Messages: s.messages.Value(),
		Timers:   s.timerCnt.Value(),
	}
}

// PendingTimers reports the number of timers physically queued in the heap
// (diagnostics; cancelled-but-undrained entries count until collected).
func (s *Scheduler) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timers.pendingLen()
}

// ResetStats zeroes the activity counters (between benchmark phases).
func (s *Scheduler) ResetStats() {
	s.switches.Reset()
	s.grants.Reset()
	s.messages.Reset()
	s.timerCnt.Reset()
}

// Spawn creates a thread with the given name, static priority and code
// function.  The code function is first invoked when the thread receives its
// first message.  Spawn may be called before Run, from inside code
// functions, or from external goroutines.  The thread belongs to the default
// scheduling class; SpawnClassed binds it to a weighted-fair class instead.
func (s *Scheduler) Spawn(name string, prio Priority, code CodeFunc) *Thread {
	return s.SpawnClassed(name, prio, nil, code)
}

// AddExternalSource tells the scheduler that messages may arrive from
// outside (network readers, OS signals), so an idle state with no timers is
// not a deadlock.  Pair with ReleaseExternalSource.
func (s *Scheduler) AddExternalSource() {
	s.mu.Lock()
	s.extRefs++
	s.mu.Unlock()
}

// ReleaseExternalSource undoes AddExternalSource and nudges the scheduler so
// it can re-evaluate an idle state.
func (s *Scheduler) ReleaseExternalSource() {
	s.mu.Lock()
	if s.extRefs > 0 {
		s.extRefs--
	}
	s.mu.Unlock()
	s.signalWake()
}

// Post delivers a message to dst from outside the thread system (the
// equivalent of the paper's mapping of network packets and OS signals onto
// messages).  It is safe to call from any goroutine at any time.
func (s *Scheduler) Post(dst *Thread, msg Message) {
	s.mu.Lock()
	if s.stopped || dst == nil || dst.state == stateTerminated {
		s.mu.Unlock()
		return
	}
	s.enqueueLocked(dst, msg)
	s.mu.Unlock()
	s.signalWake()
}

// TimerToken identifies a pending timer.
type TimerToken uint64

// TimerAfter arranges for dst to receive a KindTimer message carrying the
// returned token once d has elapsed on the scheduler's clock.
func (s *Scheduler) TimerAfter(d time.Duration, dst *Thread) TimerToken {
	return s.TimerAt(s.clock.Now().Add(d), dst)
}

// TimerAt arranges for dst to receive a KindTimer message carrying the
// returned token at instant at.  A nil or already-terminated destination is
// refused at push time (the timer would sit in the heap until due only to be
// discarded); the zero token is returned and never fires.
func (s *Scheduler) TimerAt(at time.Time, dst *Thread) TimerToken {
	s.mu.Lock()
	if dst == nil || dst.state == stateTerminated {
		s.mu.Unlock()
		return 0
	}
	s.nextTok++
	tok := TimerToken(s.nextTok)
	s.nextSeq++
	s.timers.push(timerEntry{at: at, seq: s.nextSeq, dst: dst, token: tok})
	s.mu.Unlock()
	s.signalWake()
	return tok
}

// CancelTimer removes a pending timer.  It reports whether the timer was
// still pending (false means it already fired or never existed).
func (s *Scheduler) CancelTimer(tok TimerToken) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timers.cancel(tok)
}

// Stop shuts the scheduler down: Run returns, and all thread goroutines
// unwind.  Safe to call multiple times and from any goroutine.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	s.mu.Unlock()
	s.signalWake()
}

// Err reports the first failure recorded by the scheduler (a panicking code
// function), or nil.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Run executes threads until all of them terminate, Stop is called, or a
// deadlock is detected.  It returns nil on clean completion or shutdown,
// ErrDeadlock on deadlock, or the error recorded from a panicking thread.
// Run must be called exactly once per scheduler.
//
// Run claims the clock before consuming time: a plain virtual clock refuses
// a second concurrent scheduler (vclock.ErrSharedVirtual — the shared-clock
// time-travel bug is now a loud, deterministic error), and a GroupVirtual
// member binds this scheduler into the coordinated advance.  The claim is
// released on shutdown.
func (s *Scheduler) Run() error {
	if b, ok := s.clock.(vclock.Binder); ok {
		if err := b.Bind(s); err != nil {
			s.fail(err)
			s.shutdown()
			return err
		}
	}
	defer s.shutdown()
	for {
		s.mu.Lock()
		if s.stopped {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if s.live == 0 {
			if s.extRefs == 0 {
				s.mu.Unlock()
				return nil
			}
			// No threads yet, but registered external sources may still
			// spawn or post; idle until they do (or release).  On a
			// coordinated clock the wait must be visible to the group so
			// peers' timers are not held back by an empty scheduler.
			s.mu.Unlock()
			s.waitForWake()
			continue
		}
		t := s.ready.popMax()
		if t == nil {
			if !s.idleLocked() {
				err := s.err
				s.mu.Unlock()
				return err
			}
			s.mu.Unlock()
			continue
		}
		t.state = stateRunning
		t.waitPred = nil
		s.running = t
		s.grants.Inc()
		if t != s.lastRun {
			s.switches.Inc()
			s.lastRun = t
		}
		s.mu.Unlock()

		// Hand the run token to the thread and wait for it to come back.
		// A concurrent Stop can race the handoff: a stopping thread
		// unwinds via haltSignal and may exit WITHOUT yielding (its gate
		// receive and yield/terminate sends all select against stopCh), so
		// both waits need the same stop escape — otherwise Run blocks
		// forever on a token nobody holds.  The loop top then observes
		// s.stopped and returns; shutdown still joins every thread
		// goroutine.
		select {
		case t.gate <- struct{}{}:
			select {
			case <-s.yielded:
			case <-s.stopCh:
			}
		case <-s.stopCh:
		}

		s.mu.Lock()
		s.running = nil
		s.mu.Unlock()
	}
}

// RunBackground starts Run on its own goroutine and returns a channel that
// yields Run's result exactly once.
func (s *Scheduler) RunBackground() <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- s.Run() }()
	return errc
}

// idleLocked handles the no-ready-thread state.  It is called with s.mu held
// and returns with s.mu held.  It reports false when Run should exit
// (deadlock or stop), true when the loop should re-evaluate.
func (s *Scheduler) idleLocked() bool {
	if next, ok := s.timers.peek(); ok {
		// Sleep (or advance the virtual clock) until the earliest timer.
		s.mu.Unlock()
		reached := s.clock.WaitUntil(next, s.wake)
		s.mu.Lock()
		if reached {
			s.fireTimersLocked()
		}
		return !s.stopped
	}
	if s.extRefs > 0 {
		// External sources may still post; block on the wake signal (group
		// clocks see the idle state, so peers' timers can advance time).
		s.mu.Unlock()
		s.waitForWake()
		s.mu.Lock()
		return !s.stopped
	}
	// Live threads, no timers, no external sources: true deadlock.
	if s.err == nil {
		s.err = fmt.Errorf("%w: %s", ErrDeadlock, s.blockedSummaryLocked())
	}
	s.stopped = true
	close(s.stopCh)
	return false
}

// fireTimersLocked enqueues timer messages for every timer due at or before
// the current instant.
func (s *Scheduler) fireTimersLocked() {
	now := s.clock.Now()
	for {
		e, ok := s.timers.popDue(now)
		if !ok {
			return
		}
		s.timerCnt.Inc()
		if e.dst != nil && e.dst.state != stateTerminated {
			s.enqueueLocked(e.dst, Message{Kind: KindTimer, Data: e.token})
		}
	}
}

// enqueueLocked appends msg to dst's mailbox, waking dst if the message
// matches its wait predicate.  Caller holds s.mu.
func (s *Scheduler) enqueueLocked(dst *Thread, msg Message) {
	s.nextSeq++
	msg.seq = s.nextSeq
	dst.mq.push(msg)
	s.messages.Inc()
	switch dst.state {
	case stateBlocked:
		if dst.waitPred == nil || dst.waitPred(msg) {
			dst.state = stateReady
			dst.waitPred = nil
			s.ready.push(dst)
		}
	case stateReady:
		// A new message can raise the effective priority (inheritance).
		s.ready.fix(dst)
	case stateRunning, stateTerminated:
		// Nothing to do: a running thread will find the message at its
		// next receive; terminated threads discard mail.
	}
}

// waitForWake blocks the idle scheduler until it is nudged.  On a
// coordinated group clock the wait is registered with the group (idle, no
// deadline) so that the other members may advance shared time; Stop always
// signals the wake channel, so no separate stop case is needed.  Called
// without s.mu held.
func (s *Scheduler) waitForWake() {
	if iw, ok := s.clock.(vclock.IdleWaiter); ok {
		iw.WaitIdle(s.wake)
		return
	}
	select {
	case <-s.wake:
	case <-s.stopCh:
	}
}

// signalWake nudges an idle scheduler without blocking.  Group clocks hear
// about the wake first, so a concurrent advance decision sees the pending
// work before the channel signal can be consumed out from under it.
func (s *Scheduler) signalWake() {
	if s.notifyWake != nil {
		s.notifyWake()
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// fail records the first error and initiates shutdown.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	s.mu.Unlock()
	s.signalWake()
}

// shutdown stops the world and waits for every thread goroutine to exit, so
// that Run never leaks goroutines (every spawned goroutine is joined here).
// The clock claim taken by Run is released last: a group-clock member leaves
// the coordinated advance so peers are not held back by a dead scheduler.
func (s *Scheduler) shutdown() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	all := make([]*Thread, 0, len(s.threads))
	for _, t := range s.threads {
		all = append(all, t) //ipvet:allow maporder shutdown join barrier waits for every thread; completion order is unobservable
	}
	s.mu.Unlock()
	for _, t := range all {
		<-t.done
	}
	if b, ok := s.clock.(vclock.Binder); ok {
		b.Unbind(s)
	}
}

// blockedSummaryLocked describes blocked threads for deadlock diagnostics.
func (s *Scheduler) blockedSummaryLocked() string {
	names := make([]string, 0, len(s.threads))
	for _, t := range s.threads {
		if t.state == stateBlocked {
			names = append(names, t.name)
		}
	}
	sort.Strings(names)
	return "blocked: " + strings.Join(names, ", ")
}

// Switches reports the number of context switches (token handoffs to a
// different thread) since the last ResetStats.
func (s *Scheduler) Switches() int64 { return s.switches.Value() }
