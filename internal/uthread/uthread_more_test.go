package uthread

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"infopipes/internal/vclock"
)

func TestSleepUntilOrCancelled(t *testing.T) {
	s := New()
	cancelled := false
	var slept bool
	th := s.Spawn("sleeper", PriorityNormal, func(t *Thread, m Message) Disposition {
		if m.Kind == kindCtrl {
			return Continue
		}
		t.SetControlDispatch(
			func(m Message) bool { return m.Kind == kindCtrl },
			func(t *Thread, m Message) { cancelled = true },
		)
		slept = t.SleepUntilOr(s.Now().Add(time.Hour), func() bool { return cancelled })
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	// A second thread delivers the cancel control.
	helper := s.Spawn("helper", PriorityLow, func(t *Thread, m Message) Disposition {
		t.Send(th, Message{Kind: kindCtrl, Constraint: At(PriorityControl)})
		return Terminate
	})
	s.Post(helper, Message{Kind: kindStart})
	runScheduler(t, s)
	if slept {
		t.Fatal("SleepUntilOr reported a full sleep despite cancellation")
	}
	// The cancelled timer must not linger (the virtual clock must not
	// have advanced an hour).
	if s.Now().Sub(vclock.Epoch) >= time.Hour {
		t.Fatal("cancelled sleep still advanced the clock")
	}
}

func TestSleepUntilOrPastDeadline(t *testing.T) {
	s := New()
	var ok bool
	th := s.Spawn("sleeper", PriorityNormal, func(t *Thread, m Message) Disposition {
		ok = t.SleepUntilOr(s.Now().Add(-time.Second), nil)
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	runScheduler(t, s)
	if !ok {
		t.Fatal("past deadline must report true")
	}
}

func TestDispatchControlHonoursHook(t *testing.T) {
	s := New()
	var dispatched []Kind
	th := s.Spawn("d", PriorityNormal, func(t *Thread, m Message) Disposition {
		t.SetControlDispatch(
			func(m Message) bool { return m.Kind == kindCtrl },
			func(t *Thread, m Message) { dispatched = append(dispatched, m.Kind) },
		)
		if !t.DispatchControl(Message{Kind: kindCtrl}) {
			s.fail(ErrStopped)
		}
		if t.DispatchControl(Message{Kind: kindData}) {
			s.fail(ErrStopped) // non-matching kinds must not dispatch
		}
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	runScheduler(t, s)
	if len(dispatched) != 1 || dispatched[0] != kindCtrl {
		t.Fatalf("dispatched = %v", dispatched)
	}
}

func TestTryReceive(t *testing.T) {
	s := New()
	var got []int
	th := s.Spawn("t", PriorityNormal, func(t *Thread, m Message) Disposition {
		// One message invoked us; two more are queued.
		for {
			msg, ok := t.TryReceive(nil)
			if !ok {
				break
			}
			got = append(got, msg.Data.(int))
		}
		if _, ok := t.TryReceive(nil); ok {
			s.fail(ErrStopped) // empty queue must not produce a message
		}
		return Terminate
	})
	s.Post(th, Message{Kind: kindData, Data: 1})
	s.Post(th, Message{Kind: kindData, Data: 2})
	s.Post(th, Message{Kind: kindData, Data: 3})
	runScheduler(t, s)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v, want [2 3] (first message consumed by invocation)", got)
	}
}

func TestQueueLenAndCurrentConstraint(t *testing.T) {
	s := New()
	th := s.Spawn("q", PriorityNormal, func(t *Thread, m Message) Disposition {
		if got := t.CurrentConstraint(); !got.Set || got.Level != PriorityHigh {
			s.fail(ErrStopped)
		}
		if t.QueueLen() != 1 {
			s.fail(ErrDeadlock)
		}
		t.Receive()
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart, Constraint: At(PriorityHigh)})
	s.Post(th, Message{Kind: kindData})
	runScheduler(t, s)
}

func TestTimerOrderingManyTimers(t *testing.T) {
	// Many timers registered out of order fire in deadline order.
	s := New()
	const n = 50
	var fired []int
	th := s.Spawn("timers", PriorityNormal, func(t *Thread, m Message) Disposition {
		if m.Kind == KindTimer {
			return Continue
		}
		perm := rand.New(rand.NewSource(3)).Perm(n)
		for _, i := range perm {
			i := i
			dst := s.Spawn("w", PriorityNormal, func(t *Thread, m Message) Disposition {
				fired = append(fired, i)
				return Terminate
			})
			s.TimerAt(s.Now().Add(time.Duration(i+1)*time.Millisecond), dst)
		}
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	runScheduler(t, s)
	if len(fired) != n {
		t.Fatalf("fired %d, want %d", len(fired), n)
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("timers fired out of order: %v", fired)
	}
}

// Property: for any set of queued constraints, delivery is ordered by
// (set desc, level desc, FIFO).
func TestMailboxDeliveryOrderProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		type entry struct {
			c   Constraint
			idx int
		}
		entries := make([]entry, n)
		for i := range entries {
			var c Constraint
			if r.Intn(2) == 0 {
				c = At(Priority(r.Intn(3) * 10))
			}
			entries[i] = entry{c: c, idx: i}
		}
		s := New()
		var got []entry
		th := s.Spawn("m", PriorityNormal, func(t *Thread, m Message) Disposition {
			if m.Kind == kindStop {
				return Terminate
			}
			got = append(got, m.Data.(entry))
			if len(got) == n {
				return Terminate
			}
			return Continue
		})
		// Queue everything before the scheduler runs so all are pending.
		for _, e := range entries {
			s.Post(th, Message{Kind: kindData, Data: e, Constraint: e.c})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		// Verify order: higher constraint first; unset last; FIFO within.
		rank := func(e entry) int {
			if !e.c.Set {
				return -1
			}
			return int(e.c.Level)
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if rank(a) < rank(b) {
				return false
			}
			if rank(a) == rank(b) && a.idx > b.idx {
				return false // FIFO violated within a level
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromCodeFunction(t *testing.T) {
	s := New()
	var childRan bool
	parent := s.Spawn("parent", PriorityNormal, func(t *Thread, m Message) Disposition {
		child := s.Spawn("child", PriorityNormal, func(t *Thread, m Message) Disposition {
			childRan = true
			return Terminate
		})
		t.Send(child, Message{Kind: kindData})
		return Terminate
	})
	s.Post(parent, Message{Kind: kindStart})
	runScheduler(t, s)
	if !childRan {
		t.Fatal("child spawned from a code function never ran")
	}
}

func TestSendToTerminatedThreadIsDropped(t *testing.T) {
	s := New()
	dead := s.Spawn("dead", PriorityNormal, func(t *Thread, m Message) Disposition {
		return Terminate
	})
	alive := s.Spawn("alive", PriorityNormal, func(t *Thread, m Message) Disposition {
		if m.Kind == kindData {
			t.Send(dead, Message{Kind: kindData}) // must not wedge anything
			return Terminate
		}
		return Continue
	})
	s.Post(dead, Message{Kind: kindStart})
	s.Post(alive, Message{Kind: kindData})
	runScheduler(t, s)
}

func TestRunBackgroundAndStopIdempotent(t *testing.T) {
	s := New(WithClock(vclock.Real{}))
	s.AddExternalSource()
	errc := s.RunBackground()
	s.Stop()
	s.Stop() // idempotent
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return")
	}
}

func TestYieldRoundRobinAmongEquals(t *testing.T) {
	// Two equal-priority threads that yield per step interleave rather
	// than running to completion one after the other.
	s := New()
	var order []string
	mk := func(name string, n int) *Thread {
		return s.Spawn(name, PriorityNormal, func(t *Thread, m Message) Disposition {
			for i := 0; i < n; i++ {
				order = append(order, name)
				t.Yield()
			}
			return Terminate
		})
	}
	a := mk("a", 5)
	b := mk("b", 5)
	s.Post(a, Message{Kind: kindStart})
	s.Post(b, Message{Kind: kindStart})
	runScheduler(t, s)
	// Expect a b a b ... rather than aaaaabbbbb.
	interleaved := false
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			interleaved = true
			break
		}
	}
	if !interleaved {
		t.Fatalf("no interleaving: %v", order)
	}
}

func TestCoroLinkAccessors(t *testing.T) {
	s := New()
	l := NewCoroLink("x")
	if l.Name() != "x" {
		t.Error("name")
	}
	a := s.Spawn("a", PriorityNormal, func(t *Thread, m Message) Disposition { return Terminate })
	b := s.Spawn("b", PriorityNormal, func(t *Thread, m Message) Disposition { return Terminate })
	l.BindUp(a)
	l.BindDown(b)
	if l.Up() != a || l.Down() != b {
		t.Error("bindings lost")
	}
	if l.Closed() {
		t.Error("fresh link closed")
	}
	l.Close()
	if !l.Closed() {
		t.Error("Close had no effect")
	}
	s.Post(a, Message{Kind: kindStart})
	s.Post(b, Message{Kind: kindStart})
	runScheduler(t, s)
}
