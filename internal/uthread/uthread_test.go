package uthread

import (
	"errors"
	"testing"
	"time"

	"infopipes/internal/vclock"
)

const (
	kindStart Kind = KindUserBase + iota
	kindData
	kindCtrl
	kindStop
)

// runScheduler runs s and fails the test on error.
func runScheduler(t *testing.T, s *Scheduler) {
	t.Helper()
	if err := s.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

func TestSingleThreadProcessesMessagesInOrder(t *testing.T) {
	s := New()
	var got []int
	th := s.Spawn("worker", PriorityNormal, func(t *Thread, m Message) Disposition {
		if m.Kind == kindStop {
			return Terminate
		}
		got = append(got, m.Data.(int))
		return Continue
	})
	for i := 0; i < 5; i++ {
		s.Post(th, Message{Kind: kindData, Data: i})
	}
	s.Post(th, Message{Kind: kindStop})
	runScheduler(t, s)
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("message %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestRunReturnsWhenAllThreadsTerminate(t *testing.T) {
	s := New()
	th := s.Spawn("once", PriorityNormal, func(t *Thread, m Message) Disposition {
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after all threads terminated")
	}
	if !th.Terminated() {
		t.Error("thread not marked terminated")
	}
}

func TestCallReply(t *testing.T) {
	s := New()
	server := s.Spawn("server", PriorityNormal, func(t *Thread, m Message) Disposition {
		switch m.Kind {
		case kindStop:
			return Terminate
		case kindData:
			t.Reply(m, m.Data.(int)*2)
		}
		return Continue
	})
	var results []int
	client := s.Spawn("client", PriorityNormal, func(t *Thread, m Message) Disposition {
		for i := 1; i <= 4; i++ {
			rep := t.Call(server, Message{Kind: kindData, Data: i})
			results = append(results, rep.Data.(int))
		}
		t.Send(server, Message{Kind: kindStop})
		return Terminate
	})
	s.Post(client, Message{Kind: kindStart})
	runScheduler(t, s)
	want := []int{2, 4, 6, 8}
	if len(results) != len(want) {
		t.Fatalf("results = %v, want %v", results, want)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("results[%d] = %d, want %d", i, results[i], want[i])
		}
	}
}

func TestStaticPriorityOrdersExecution(t *testing.T) {
	s := New()
	var order []string
	mk := func(name string, p Priority) *Thread {
		return s.Spawn(name, p, func(t *Thread, m Message) Disposition {
			order = append(order, name)
			return Terminate
		})
	}
	lo := mk("lo", PriorityLow)
	hi := mk("hi", PriorityHigh)
	mid := mk("mid", PriorityNormal)
	// Post in priority-scrambled order; execution must follow priority.
	s.Post(lo, Message{Kind: kindStart})
	s.Post(mid, Message{Kind: kindStart})
	s.Post(hi, Message{Kind: kindStart})
	runScheduler(t, s)
	want := []string{"hi", "mid", "lo"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMessageConstraintOverridesStaticPriority(t *testing.T) {
	s := New()
	var order []string
	mk := func(name string, p Priority) *Thread {
		return s.Spawn(name, p, func(t *Thread, m Message) Disposition {
			order = append(order, name)
			return Terminate
		})
	}
	lo := mk("lo", PriorityLow)
	hi := mk("hi", PriorityHigh)
	// The low-priority thread receives a message with a constraint above
	// the high-priority thread's static priority (§4 scheduling rule).
	s.Post(hi, Message{Kind: kindStart})
	s.Post(lo, Message{Kind: kindStart, Constraint: At(PriorityControl)})
	runScheduler(t, s)
	if order[0] != "lo" {
		t.Fatalf("order = %v, want lo first (constraint should win)", order)
	}
}

func TestPriorityInheritanceRaisesEffectivePriority(t *testing.T) {
	// A ready thread with a queued high-constraint message must outrank a
	// higher-static-priority thread: the inheritance scheme of §4.
	s := New()
	var order []string
	lo := s.Spawn("lo", PriorityLow, func(t *Thread, m Message) Disposition {
		order = append(order, "lo:"+kindName(m.Kind))
		if m.Kind == kindStop {
			return Terminate
		}
		return Continue
	})
	hi := s.Spawn("hi", PriorityHigh, func(t *Thread, m Message) Disposition {
		order = append(order, "hi")
		return Terminate
	})
	s.Post(hi, Message{Kind: kindStart})
	s.Post(lo, Message{Kind: kindData}) // plain message first
	s.Post(lo, Message{Kind: kindStop, Constraint: At(PriorityControl)})
	runScheduler(t, s)
	// With inheritance, "lo" must run before "hi", and must process its
	// high-constraint kindStop before the plain kindData (delivery order is
	// constraint-first).
	if order[0] != "lo:stop" {
		t.Fatalf("order = %v, want lo:stop first (inheritance + constraint delivery)", order)
	}
}

func TestWithoutPriorityInheritance(t *testing.T) {
	s := New(WithoutPriorityInheritance())
	var order []string
	lo := s.Spawn("lo", PriorityLow, func(t *Thread, m Message) Disposition {
		order = append(order, "lo")
		return Terminate
	})
	hi := s.Spawn("hi", PriorityHigh, func(t *Thread, m Message) Disposition {
		order = append(order, "hi")
		return Terminate
	})
	s.Post(lo, Message{Kind: kindData, Constraint: At(PriorityControl)})
	s.Post(hi, Message{Kind: kindStart})
	runScheduler(t, s)
	// Without inheritance a *waiting* thread still derives priority from
	// its first queued message (§4), so lo still wins here — this pins the
	// exact paper semantics: ready-queue constraint is not inheritance.
	if order[0] != "lo" {
		t.Fatalf("order = %v, want lo first (ready-thread constraint rule)", order)
	}
}

func kindName(k Kind) string {
	switch k {
	case kindData:
		return "data"
	case kindStop:
		return "stop"
	default:
		return "other"
	}
}

func TestConstraintDeliveryOrderWithinThread(t *testing.T) {
	// Control events (high constraint) overtake earlier-queued data (§2.2:
	// handlers run at higher priority than data processing).
	s := New()
	var got []Kind
	th := s.Spawn("mixed", PriorityNormal, func(t *Thread, m Message) Disposition {
		got = append(got, m.Kind)
		if len(got) == 3 {
			return Terminate
		}
		return Continue
	})
	s.Post(th, Message{Kind: kindData})
	s.Post(th, Message{Kind: kindData})
	s.Post(th, Message{Kind: kindCtrl, Constraint: At(PriorityControl)})
	runScheduler(t, s)
	if got[0] != kindCtrl {
		t.Fatalf("delivery order = %v, want control first", got)
	}
}

func TestSelectiveReceiveLeavesOthersQueued(t *testing.T) {
	s := New()
	var got []int
	th := s.Spawn("sel", PriorityNormal, func(t *Thread, m Message) Disposition {
		// Invoked with the first message; selectively receive 42 first.
		got = append(got, m.Data.(int))
		m42 := t.ReceiveMatch(func(m Message) bool {
			v, ok := m.Data.(int)
			return ok && v == 42
		})
		got = append(got, m42.Data.(int))
		rest := t.Receive()
		got = append(got, rest.Data.(int))
		return Terminate
	})
	s.Post(th, Message{Kind: kindData, Data: 1})
	s.Post(th, Message{Kind: kindData, Data: 7})
	s.Post(th, Message{Kind: kindData, Data: 42})
	runScheduler(t, s)
	want := []int{1, 42, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTimersFireInDeadlineOrderOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	s := New(WithClock(clk))
	var order []string
	var times []time.Duration
	start := clk.Now()
	mk := func(name string, d time.Duration) {
		th := s.Spawn(name, PriorityNormal, func(t *Thread, m Message) Disposition {
			t.SleepFor(d)
			order = append(order, name)
			times = append(times, s.Now().Sub(start))
			return Terminate
		})
		s.Post(th, Message{Kind: kindStart})
	}
	mk("c", 300*time.Millisecond)
	mk("a", 100*time.Millisecond)
	mk("b", 200*time.Millisecond)
	runScheduler(t, s)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
	wantTimes := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i := range wantTimes {
		if times[i] != wantTimes[i] {
			t.Errorf("wake time[%d] = %v, want %v (virtual clock must advance exactly)", i, times[i], wantTimes[i])
		}
	}
}

func TestCancelTimer(t *testing.T) {
	s := New()
	th := s.Spawn("w", PriorityNormal, func(t *Thread, m Message) Disposition {
		return Terminate
	})
	tok := s.TimerAfter(time.Hour, th)
	if !s.CancelTimer(tok) {
		t.Fatal("CancelTimer reported not-pending for a pending timer")
	}
	if s.CancelTimer(tok) {
		t.Fatal("CancelTimer reported pending for an already-cancelled timer")
	}
	s.Post(th, Message{Kind: kindStart})
	runScheduler(t, s)
	if got := s.Stats().Timers; got != 0 {
		t.Errorf("fired timers = %d, want 0 after cancel", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	th := s.Spawn("stuck", PriorityNormal, func(t *Thread, m Message) Disposition {
		t.ReceiveMatch(func(m Message) bool { return false }) // waits forever
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestStopUnblocksEverything(t *testing.T) {
	s := New(WithClock(vclock.Real{}))
	th := s.Spawn("stuck", PriorityNormal, func(t *Thread, m Message) Disposition {
		t.ReceiveMatch(func(m Message) bool { return false })
		return Terminate
	})
	s.AddExternalSource() // so the idle state is not a deadlock
	s.Post(th, Message{Kind: kindStart})
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after Stop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
}

func TestPanicInCodeFunctionReportedAsError(t *testing.T) {
	s := New()
	th := s.Spawn("boom", PriorityNormal, func(t *Thread, m Message) Disposition {
		panic("kaboom")
	})
	s.Post(th, Message{Kind: kindStart})
	err := s.Run()
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("Run = %v, want panic error", err)
	}
	if got := err.Error(); !contains(got, "kaboom") {
		t.Errorf("error %q does not mention the panic value", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestExternalPostWithExternalSource(t *testing.T) {
	s := New(WithClock(vclock.Real{}))
	s.AddExternalSource()
	var got int
	th := s.Spawn("rx", PriorityNormal, func(t *Thread, m Message) Disposition {
		got = m.Data.(int)
		return Terminate
	})
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	// Post from outside after the scheduler has gone idle, then release
	// the source so Run can drain once the thread terminates.
	time.Sleep(10 * time.Millisecond)
	s.Post(th, Message{Kind: kindData, Data: 99})
	s.ReleaseExternalSource()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not finish")
	}
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
}

func TestSendPreemptsForHigherPriorityReceiver(t *testing.T) {
	s := New()
	var order []string
	hi := s.Spawn("hi", PriorityHigh, func(t *Thread, m Message) Disposition {
		order = append(order, "hi-ran")
		return Terminate
	})
	lo := s.Spawn("lo", PriorityLow, func(t *Thread, m Message) Disposition {
		order = append(order, "lo-before-send")
		t.Send(hi, Message{Kind: kindStart})
		order = append(order, "lo-after-send")
		return Terminate
	})
	s.Post(lo, Message{Kind: kindStart})
	runScheduler(t, s)
	want := []string{"lo-before-send", "hi-ran", "lo-after-send"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (send must preempt)", order, want)
		}
	}
}

func TestContextSwitchCounting(t *testing.T) {
	s := New()
	const rounds = 10
	b := s.Spawn("b", PriorityNormal, func(t *Thread, m Message) Disposition {
		if m.Kind == kindStop {
			return Terminate
		}
		t.Reply(m, nil)
		return Continue
	})
	a := s.Spawn("a", PriorityNormal, func(t *Thread, m Message) Disposition {
		for i := 0; i < rounds; i++ {
			t.Call(b, Message{Kind: kindData})
		}
		t.Send(b, Message{Kind: kindStop})
		return Terminate
	})
	s.Post(a, Message{Kind: kindStart})
	runScheduler(t, s)
	st := s.Stats()
	// Each call round requires at least 2 switches (a->b, b->a).
	if st.Switches < 2*rounds {
		t.Errorf("switches = %d, want >= %d", st.Switches, 2*rounds)
	}
	if st.Messages == 0 || st.Grants == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestControlDispatchWhileBlockedInCall(t *testing.T) {
	// §4: the thread blocks waiting for either a control message or the
	// data reply; controls are dispatched without abandoning the call.
	s := New()
	var trace []string
	var server *Thread
	server = s.Spawn("server", PriorityNormal, func(t *Thread, m Message) Disposition {
		// Delay the reply so the client is parked in Call when the
		// control event arrives.
		req := m
		ctl := t.Receive() // the control message forwarded by client? no: direct
		_ = ctl
		t.Reply(req, "reply")
		return Terminate
	})
	client := s.Spawn("client", PriorityNormal, func(t *Thread, m Message) Disposition {
		t.SetControlDispatch(
			func(m Message) bool { return m.Kind == kindCtrl },
			func(t *Thread, m Message) { trace = append(trace, "ctrl") },
		)
		rep := t.Call(server, Message{Kind: kindData})
		trace = append(trace, rep.Data.(string))
		return Terminate
	})
	s.Post(client, Message{Kind: kindStart})
	// While client is blocked in Call, deliver a control to the client and
	// then let the server reply.
	helper := s.Spawn("helper", PriorityLow, func(t *Thread, m Message) Disposition {
		t.Send(client, Message{Kind: kindCtrl, Constraint: At(PriorityControl)})
		t.Send(server, Message{Kind: kindData}) // unblock the server's Receive
		return Terminate
	})
	s.Post(helper, Message{Kind: kindStart})
	runScheduler(t, s)
	if len(trace) != 2 || trace[0] != "ctrl" || trace[1] != "reply" {
		t.Fatalf("trace = %v, want [ctrl reply] (control dispatched while blocked)", trace)
	}
}

func TestCoroLinkHandoffPattern(t *testing.T) {
	// Reproduces the Fig 5 control flow: a put into a fresh coroutine
	// starts its main; the putter is released by the consumer's next
	// empty Get.
	s := New()
	var trace []string
	link := NewCoroLink("L")
	consumer := s.Spawn("consumer", PriorityNormal, func(t *Thread, m Message) Disposition {
		if link.IsCoroData(m) {
			link.Offer(ItemOf(m))
		}
		for {
			x, err := link.Get(t)
			if err != nil {
				return Terminate
			}
			if x == nil { // sentinel: end of stream
				link.Drain(t) // release the producer's final Put
				return Terminate
			}
			trace = append(trace, "got")
		}
	})
	producer := s.Spawn("producer", PriorityNormal, func(t *Thread, m Message) Disposition {
		for i := 0; i < 3; i++ {
			trace = append(trace, "put-begin")
			if err := link.Put(t, i); err != nil {
				t.sched.fail(err)
				return Terminate
			}
			trace = append(trace, "put-end")
		}
		if err := link.Put(t, nil); err != nil {
			return Terminate
		}
		return Terminate
	})
	link.BindUp(producer)
	link.BindDown(consumer)
	s.Post(producer, Message{Kind: kindStart})
	runScheduler(t, s)
	// Expected interleaving: put-begin, got, put-end, put-begin, got, ...
	want := []string{
		"put-begin", "got",
		"put-end", "put-begin", "got",
		"put-end", "put-begin", "got",
		"put-end",
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v\nwant %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q\nfull: %v", i, trace[i], want[i], trace)
		}
	}
}

func TestCoroLinkPullModeStartsProducer(t *testing.T) {
	// Pull-mode startup (Fig 6b): the consumer's Get on an empty link must
	// start the producer coroutine's main function.
	s := New()
	var got []int
	link := NewCoroLink("L")
	producer := s.Spawn("producer", PriorityNormal, func(t *Thread, m Message) Disposition {
		// m is the resume request that started us.
		for i := 10; i < 13; i++ {
			if err := link.Put(t, i); err != nil {
				return Terminate
			}
		}
		_ = link.Put(t, nil)
		return Terminate
	})
	consumer := s.Spawn("consumer", PriorityNormal, func(t *Thread, m Message) Disposition {
		for {
			x, err := link.Get(t)
			if err != nil || x == nil {
				link.Drain(t) // release the producer's final Put
				return Terminate
			}
			got = append(got, x.(int))
		}
	})
	link.BindUp(producer)
	link.BindDown(consumer)
	s.Post(consumer, Message{Kind: kindStart})
	runScheduler(t, s)
	want := []int{10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCoroLinkCloseUnblocksViaControl(t *testing.T) {
	s := New()
	link := NewCoroLink("L")
	var consumerErr error
	consumer := s.Spawn("consumer", PriorityNormal, func(t *Thread, m Message) Disposition {
		t.SetControlDispatch(
			func(m Message) bool { return m.Kind == kindStop },
			func(t *Thread, m Message) { link.Close() },
		)
		_, consumerErr = link.Get(t)
		return Terminate
	})
	producer := s.Spawn("producer", PriorityNormal, func(t *Thread, m Message) Disposition {
		// Never puts; just tells the consumer to stop, simulating a
		// pipeline stop event arriving while blocked in pull.
		t.Send(consumer, Message{Kind: kindStop, Constraint: At(PriorityControl)})
		return Terminate
	})
	link.BindUp(producer)
	link.BindDown(consumer)
	s.Post(consumer, Message{Kind: kindStart})
	// consumer's Get sends resume to producer, which starts producer main.
	runScheduler(t, s)
	if !errors.Is(consumerErr, ErrLinkClosed) {
		t.Fatalf("Get = %v, want ErrLinkClosed", consumerErr)
	}
}

func TestSchedulerStatsAndReset(t *testing.T) {
	s := New()
	th := s.Spawn("w", PriorityNormal, func(t *Thread, m Message) Disposition {
		return Terminate
	})
	s.Post(th, Message{Kind: kindStart})
	runScheduler(t, s)
	if s.Stats().Messages == 0 {
		t.Error("messages counter empty")
	}
	s.ResetStats()
	if got := s.Stats(); got.Messages != 0 || got.Switches != 0 {
		t.Errorf("ResetStats left %+v", got)
	}
}

func TestThreadAccessors(t *testing.T) {
	s := New()
	th := s.Spawn("acc", PriorityHigh, func(t *Thread, m Message) Disposition {
		if t.CurrentConstraint().Level != PriorityControl {
			// set via the posted message below
		}
		return Terminate
	})
	if th.Name() != "acc" {
		t.Errorf("Name = %q", th.Name())
	}
	if th.ID() == 0 {
		t.Error("ID = 0")
	}
	if th.Scheduler() != s {
		t.Error("Scheduler mismatch")
	}
	if th.StaticPriority() != PriorityHigh {
		t.Errorf("StaticPriority = %v", th.StaticPriority())
	}
	s.Post(th, Message{Kind: kindStart, Constraint: At(PriorityControl)})
	runScheduler(t, s)
}
