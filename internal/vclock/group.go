package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// GroupVirtual is a deterministic virtual clock shared by several schedulers
// — the coordinated fix for the time-travel bug of sharing a plain Virtual.
// Each scheduler gets its own Member; a member's WaitUntil registers a
// per-waiter deadline instead of advancing immediately, and the group only
// moves global time — to the *minimum* pending deadline — once every member
// is idle (blocked in WaitUntil or WaitIdle).  That turns the multi-
// scheduler case into a proper conservative distributed discrete-event
// simulation: timers across all members fire in global deadline order, and
// runs are deterministic (members waiting on the same instant wake together;
// their relative execution order at that instant is the only freedom left).
//
// A wake signal pending on an idle member vetoes the advance: the member has
// new work at the current instant (a cross-scheduler Post), so the group
// interrupts its wait instead of moving time.  The scheduler announces every
// wake through NotifyWake BEFORE signalling the wake channel, so the veto
// cannot be lost to the waiter's own select racing the group for the channel
// — the flag is visible first, and a set flag with an already-claimed signal
// simply defers the advance until the waiter has deregistered.  Members
// leave the group when their scheduler shuts down, so finished schedulers
// never hold time back.
type GroupVirtual struct {
	mu      sync.Mutex
	now     time.Time
	members []*GroupMember
}

// NewGroupVirtual returns a coordinated shared clock positioned at Epoch.
func NewGroupVirtual() *GroupVirtual {
	return &GroupVirtual{now: Epoch}
}

// NewGroupVirtualAt returns a coordinated shared clock positioned at start.
func NewGroupVirtualAt(start time.Time) *GroupVirtual {
	return &GroupVirtual{now: start}
}

// Now reports the current instant of the shared clock.
func (g *GroupVirtual) Now() time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now
}

// Members reports how many members have joined (and not left) the group.
func (g *GroupVirtual) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, m := range g.members {
		if !m.left {
			n++
		}
	}
	return n
}

// Member registers and returns a new member clock.  Pass exactly one Member
// per scheduler (uthread.WithClock); members must not be shared.  A member
// counts as busy until it first waits, so a scheduler may join a running
// group without racing its peers' time.
func (g *GroupVirtual) Member() *GroupMember {
	m := &GroupMember{g: g}
	g.mu.Lock()
	g.members = append(g.members, m)
	g.mu.Unlock()
	return m
}

// GroupMember is one scheduler's handle on a GroupVirtual.
type GroupMember struct {
	g *GroupVirtual

	// wakePending is set by NotifyWake strictly before the corresponding
	// wake-channel send, and cleared by whichever party consumes the
	// signal.  It is the group's race-free view of "work is pending for
	// this member at the current instant".
	wakePending atomic.Bool

	// All fields below are protected by g.mu.
	idle        bool
	hasDeadline bool
	deadline    time.Time
	wakeCh      <-chan struct{} // the waiter's interrupt channel while idle
	outcome     chan bool       // buffered(1); receives the wait result
	left        bool
	owner       any
}

var (
	_ Clock        = (*GroupMember)(nil)
	_ IdleWaiter   = (*GroupMember)(nil)
	_ Binder       = (*GroupMember)(nil)
	_ WakeNotifier = (*GroupMember)(nil)
)

// Now implements Clock.
func (m *GroupMember) Now() time.Time { return m.g.Now() }

// Group returns the shared clock this member belongs to.
func (m *GroupMember) Group() *GroupVirtual { return m.g }

// NotifyWake implements WakeNotifier: called by the scheduler before every
// wake-channel signal, making the pending work visible to the group's
// advance decision ahead of the racy channel.
func (m *GroupMember) NotifyWake() { m.wakePending.Store(true) }

// WaitUntil implements Clock.  It registers t as this member's deadline and
// blocks until the group advances the shared clock to (at least) t — which
// happens only when every member is idle and t is the minimum pending
// deadline — or until wake is signalled, whichever comes first.
func (m *GroupMember) WaitUntil(t time.Time, wake <-chan struct{}) bool {
	if wake != nil {
		select {
		case <-wake:
			m.wakePending.Store(false) // signal consumed before registering
			return false
		default:
		}
	}
	g := m.g
	g.mu.Lock()
	if !t.After(g.now) {
		g.mu.Unlock()
		return true
	}
	out := make(chan bool, 1)
	m.idle, m.hasDeadline, m.deadline = true, true, t
	m.outcome, m.wakeCh = out, wake
	g.tryAdvanceLocked()
	g.mu.Unlock()
	if wake == nil {
		return <-out
	}
	select {
	case ok := <-out:
		return ok
	case <-wake:
		// Deregister BEFORE clearing wakePending: between the channel
		// consume above and this lock, a set flag with an empty channel
		// tells tryAdvance to defer rather than advance past us.
		g.mu.Lock()
		decided := m.outcome != out
		if !decided {
			m.clearLocked()
		}
		m.wakePending.Store(false)
		g.mu.Unlock()
		if !decided {
			return false
		}
		// The group decided this wait concurrently; honour its outcome
		// (the consumed wake signal still took effect: the scheduler
		// re-evaluates either way).
		return <-out
	}
}

// WaitIdle implements IdleWaiter: the member is idle with no deadline of its
// own (its scheduler is blocked waiting for external input), so the peers
// may advance time past it.  Returns when wake is signalled.  wake must not
// be nil.
func (m *GroupMember) WaitIdle(wake <-chan struct{}) {
	g := m.g
	g.mu.Lock()
	if m.wakePending.Load() {
		// Work already announced: don't register as idle at all.
		g.mu.Unlock()
		select {
		case <-wake:
		default:
		}
		m.wakePending.Store(false)
		return
	}
	out := make(chan bool, 1)
	m.idle, m.hasDeadline = true, false
	m.outcome, m.wakeCh = out, wake
	g.tryAdvanceLocked()
	g.mu.Unlock()
	select {
	case <-out:
	case <-wake:
		// As in WaitUntil: deregister before clearing the flag so a
		// concurrent advance decision defers instead of passing us.
		g.mu.Lock()
		decided := m.outcome != out
		if !decided {
			m.clearLocked()
		}
		m.wakePending.Store(false)
		g.mu.Unlock()
		if decided {
			<-out
		}
	}
}

// Bind implements Binder: one scheduler per member.
func (m *GroupMember) Bind(owner any) error {
	g := m.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if m.left {
		return ErrMemberLeft
	}
	if m.owner != nil && m.owner != owner {
		return ErrSharedVirtual
	}
	m.owner = owner
	return nil
}

// Unbind implements Binder: the member leaves the group for good, so the
// remaining members' timers are no longer held back by a stopped scheduler.
func (m *GroupMember) Unbind(owner any) {
	g := m.g
	g.mu.Lock()
	if m.owner != nil && m.owner != owner {
		g.mu.Unlock()
		return
	}
	m.owner = nil
	m.leaveLocked()
	g.mu.Unlock()
}

// Leave permanently removes the member from advance coordination (idempotent).
// Scheduler shutdown does this via Unbind; it is exported for hand-driven
// members.
func (m *GroupMember) Leave() {
	m.g.mu.Lock()
	m.leaveLocked()
	m.g.mu.Unlock()
}

func (m *GroupMember) leaveLocked() {
	if m.left {
		return
	}
	m.left = true
	if m.outcome != nil {
		// A leaving member cannot stay blocked: release it as interrupted.
		out := m.outcome
		m.clearLocked()
		out <- false
	}
	m.g.tryAdvanceLocked()
}

// clearLocked resets the member's waiting state.  Caller holds g.mu.
func (m *GroupMember) clearLocked() {
	m.idle, m.hasDeadline = false, false
	m.outcome, m.wakeCh = nil, nil
}

// tryAdvanceLocked is the heart of the coordinated advance.  Caller holds
// g.mu.  It does nothing unless every live member is idle.  Then, if any
// idle member has a wake already pending, that member is released as
// interrupted instead (it has work at the current instant — advancing now
// would be the time-travel bug).  Otherwise the clock moves to the minimum
// pending deadline and every member due at that instant is released.
func (g *GroupVirtual) tryAdvanceLocked() {
	live := 0
	for _, m := range g.members {
		if m.left {
			continue
		}
		live++
		if !m.idle {
			return
		}
	}
	if live == 0 {
		return
	}
	for _, m := range g.members {
		if m.left || !m.wakePending.Load() {
			continue
		}
		if m.wakeCh == nil {
			// Uninterruptible waiter (nil wake): the hint cannot be
			// delivered; drop it so it cannot wedge the advance.
			m.wakePending.Store(false)
			continue
		}
		// Work is pending for m at the current instant (the flag is set
		// strictly before the wake-channel send).  Either the signal is
		// still in the channel — consume it and release m as interrupted
		// — or m's own select already claimed it and m will deregister as
		// soon as it takes g.mu.  In both cases: do not advance.
		select {
		case <-m.wakeCh:
			m.wakePending.Store(false)
			out := m.outcome
			m.clearLocked()
			out <- false
		default:
		}
		return
	}
	var min time.Time
	found := false
	for _, m := range g.members {
		if m.left || !m.hasDeadline {
			continue
		}
		if !found || m.deadline.Before(min) {
			min = m.deadline
			found = true
		}
	}
	if !found {
		return // all idle with no deadlines: quiescent until external input
	}
	if min.After(g.now) {
		g.now = min
	}
	for _, m := range g.members {
		if m.left || !m.hasDeadline || m.deadline.After(g.now) {
			continue
		}
		out := m.outcome
		m.clearLocked()
		out <- true
	}
}
