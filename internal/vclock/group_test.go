package vclock

import (
	"testing"
	"time"
)

// waitResult carries one member's WaitUntil return.
type waitResult struct {
	reached bool
	at      time.Time
}

func waitAsync(g *GroupVirtual, m *GroupMember, t time.Time, wake <-chan struct{}) <-chan waitResult {
	ch := make(chan waitResult, 1)
	go func() {
		ok := m.WaitUntil(t, wake)
		ch <- waitResult{reached: ok, at: g.Now()}
	}()
	return ch
}

// pollIdle blocks until the member is registered idle (test-only spin).
func pollIdle(t *testing.T, g *GroupVirtual, m *GroupMember) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		idle := m.idle
		g.mu.Unlock()
		if idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("member never went idle")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestGroupAdvancesToMinimumDeadline(t *testing.T) {
	g := NewGroupVirtual()
	a, b := g.Member(), g.Member()
	t1 := Epoch.Add(10 * time.Millisecond)
	t2 := Epoch.Add(20 * time.Millisecond)

	wakeB := make(chan struct{}, 1)
	resB := waitAsync(g, b, t2, wakeB)
	pollIdle(t, g, b)
	// b alone must not advance anything while a is busy.
	if got := g.Now(); !got.Equal(Epoch) {
		t.Fatalf("clock moved to %v with a member still busy", got)
	}

	// a goes idle with the earlier deadline: the group advances to t1 only.
	if ok := a.WaitUntil(t1, nil); !ok {
		t.Fatal("a.WaitUntil returned interrupted")
	}
	if got := g.Now(); !got.Equal(t1) {
		t.Fatalf("clock = %v, want minimum deadline %v", got, t1)
	}
	select {
	case r := <-resB:
		t.Fatalf("b released early at %v (reached=%v), deadline %v", r.at, r.reached, t2)
	default:
	}

	// a idles again with a later deadline: now b's t2 is the minimum.
	resA := waitAsync(g, a, Epoch.Add(30*time.Millisecond), nil)
	r := <-resB
	if !r.reached || !r.at.Equal(t2) {
		t.Fatalf("b woke reached=%v at %v, want true at %v", r.reached, r.at, t2)
	}
	// b leaves; a's own deadline becomes the minimum.
	b.Leave()
	ra := <-resA
	if !ra.reached || !ra.at.Equal(Epoch.Add(30*time.Millisecond)) {
		t.Fatalf("a woke reached=%v at %v", ra.reached, ra.at)
	}
}

// signalWake mimics the scheduler's wake path: the group hears about the
// wake (NotifyWake) strictly before the channel signal exists.
func signalWake(m *GroupMember, wake chan struct{}) {
	m.NotifyWake()
	select {
	case wake <- struct{}{}:
	default:
	}
}

// TestGroupPendingWakeVetoesAdvance: a wake announced through NotifyWake
// before a peer's registration DETERMINISTICALLY vetoes the advance — the
// member is released as interrupted and the clock does not move, no matter
// which party wins the race for the wake channel itself.
func TestGroupPendingWakeVetoesAdvance(t *testing.T) {
	t1 := Epoch.Add(10 * time.Millisecond)
	t2 := Epoch.Add(20 * time.Millisecond)
	for run := 0; run < 50; run++ {
		g := NewGroupVirtual()
		a, b := g.Member(), g.Member()
		wakeA := make(chan struct{}, 1)

		resA := waitAsync(g, a, t1, wakeA)
		pollIdle(t, g, a)
		// A cross-scheduler post lands for a: flag first, then signal.
		signalWake(a, wakeA)
		resB := waitAsync(g, b, t2, nil)

		r := <-resA
		if r.reached {
			t.Fatalf("run %d: a reported deadline reached despite announced wake", run)
		}
		if got := g.Now(); !got.Equal(Epoch) {
			t.Fatalf("run %d: clock advanced to %v past an announced wake (time travel)", run, got)
		}
		select {
		case rb := <-resB:
			t.Fatalf("run %d: b released early at %v (reached=%v), deadline %v", run, rb.at, rb.reached, t2)
		default:
		}
		// a re-idles with no deadline: b's t2 is now the group minimum.
		go a.WaitIdle(wakeA)
		rb := <-resB
		if !rb.reached || !rb.at.Equal(t2) {
			t.Fatalf("run %d: b woke reached=%v at %v, want true at %v", run, rb.reached, rb.at, t2)
		}
		signalWake(a, wakeA) // release the WaitIdle
	}
}

// TestGroupWaitIdleVetoesAdvance covers the deadline-free waiter (a
// scheduler idle on external sources): an announced wake must prevent the
// peers from advancing past the instant the work arrived — the lost-veto
// variant where the waiter's own select races the group for the signal.
func TestGroupWaitIdleVetoesAdvance(t *testing.T) {
	t2 := Epoch.Add(20 * time.Millisecond)
	for run := 0; run < 50; run++ {
		g := NewGroupVirtual()
		r, s := g.Member(), g.Member()
		wakeR := make(chan struct{}, 1)

		idleDone := make(chan time.Time, 1)
		go func() {
			r.WaitIdle(wakeR)
			idleDone <- g.Now()
		}()
		pollIdle(t, g, r)
		// Cross-shard delivery for r, then s registers its deadline.
		signalWake(r, wakeR)
		resS := waitAsync(g, s, t2, nil)

		// r must come back at the current instant, before any advance.
		at := <-idleDone
		if !at.Equal(Epoch) {
			t.Fatalf("run %d: WaitIdle returned at %v, want %v (advance slipped past pending work)", run, at, Epoch)
		}
		select {
		case rs := <-resS:
			t.Fatalf("run %d: s released at %v while r's work was pending", run, rs.at)
		default:
		}
		// r goes idle again with nothing pending: s may now advance.
		go func() {
			r.WaitIdle(wakeR)
			idleDone <- g.Now()
		}()
		rs := <-resS
		if !rs.reached || !rs.at.Equal(t2) {
			t.Fatalf("run %d: s woke reached=%v at %v, want true at %v", run, rs.reached, rs.at, t2)
		}
		signalWake(r, wakeR)
		<-idleDone
	}
}

func TestGroupSameDeadlineWakesAll(t *testing.T) {
	g := NewGroupVirtual()
	a, b := g.Member(), g.Member()
	at := Epoch.Add(5 * time.Millisecond)
	resA := waitAsync(g, a, at, nil)
	resB := waitAsync(g, b, at, nil)
	ra, rb := <-resA, <-resB
	if !ra.reached || !rb.reached {
		t.Fatalf("reached = %v/%v, want true/true", ra.reached, rb.reached)
	}
	if !g.Now().Equal(at) {
		t.Fatalf("clock = %v, want %v", g.Now(), at)
	}
}

func TestGroupMemberBindRefusesSecondOwner(t *testing.T) {
	g := NewGroupVirtual()
	m := g.Member()
	if err := m.Bind("sched1"); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := m.Bind("sched2"); err == nil {
		t.Fatal("second Bind succeeded, want refusal")
	}
	m.Unbind("sched1")
	if err := m.Bind("sched1"); err == nil {
		t.Fatal("Bind after Unbind (left group) succeeded, want ErrMemberLeft")
	}
	if g.Members() != 0 {
		t.Fatalf("Members = %d after unbind, want 0", g.Members())
	}
}

func TestVirtualBindRefusesConcurrentSharing(t *testing.T) {
	v := NewVirtual()
	if err := v.Bind("sched1"); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := v.Bind("sched1"); err != nil {
		t.Fatalf("re-Bind by same owner: %v", err)
	}
	if err := v.Bind("sched2"); err == nil {
		t.Fatal("concurrent second owner accepted, want ErrSharedVirtual")
	}
	v.Unbind("sched1")
	if err := v.Bind("sched2"); err != nil {
		t.Fatalf("sequential reuse after Unbind: %v", err)
	}
}
