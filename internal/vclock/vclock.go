// Package vclock provides the time base for the Infopipe runtime.
//
// The paper's thread package maps operating-system timer signals to messages
// (§4).  This package abstracts the source of those timer signals so that the
// same scheduler can run against the real wall clock (for interactive tools
// and distributed pipelines) or against a deterministic virtual clock (for
// reproducible experiments: the virtual clock advances only when the
// scheduler is otherwise idle, turning timing experiments into discrete-event
// simulations that run at CPU speed).
package vclock

import (
	"sync"
	"time"
)

// Epoch is the instant at which every virtual clock starts.  It is an
// arbitrary fixed point so that virtual-time experiments are reproducible
// byte-for-byte.
var Epoch = time.Date(2001, 11, 12, 0, 0, 0, 0, time.UTC) // Middleware 2001

// Clock is a source of time for a scheduler.  Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now reports the current instant on this clock.
	Now() time.Time

	// WaitUntil blocks until the clock reaches t, or until wake is
	// signalled, whichever comes first.  It reports whether the deadline
	// was reached (true) or the wait was interrupted (false).  A nil wake
	// channel means the wait cannot be interrupted.
	//
	// For a virtual clock, reaching t means advancing the clock to t.
	WaitUntil(t time.Time, wake <-chan struct{}) bool
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// WaitUntil implements Clock.
func (Real) WaitUntil(t time.Time, wake <-chan struct{}) bool {
	d := time.Until(t)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-wake:
		return false
	}
}

// Virtual is a deterministic simulated clock.  Time advances only through
// WaitUntil or Advance; Now never moves on its own.  The zero value is not
// usable; construct with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: Epoch}
}

// NewVirtualAt returns a virtual clock positioned at start.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// WaitUntil implements Clock.  If wake is already signalled the wait is
// abandoned without moving the clock; otherwise the clock jumps to t.
func (v *Virtual) WaitUntil(t time.Time, wake <-chan struct{}) bool {
	if wake != nil {
		select {
		case <-wake:
			return false
		default:
		}
	}
	v.Advance(t)
	return true
}

// Advance moves the clock forward to t.  Moving backwards is a no-op: the
// clock is monotonic.
func (v *Virtual) Advance(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}

// AdvanceBy moves the clock forward by d and returns the new instant.
func (v *Virtual) AdvanceBy(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d > 0 {
		v.now = v.now.Add(d)
	}
	return v.now
}
