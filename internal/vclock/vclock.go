// Package vclock provides the time base for the Infopipe runtime.
//
// The paper's thread package maps operating-system timer signals to messages
// (§4).  This package abstracts the source of those timer signals so that the
// same scheduler can run against the real wall clock (for interactive tools
// and distributed pipelines) or against a deterministic virtual clock (for
// reproducible experiments: the virtual clock advances only when the
// scheduler is otherwise idle, turning timing experiments into discrete-event
// simulations that run at CPU speed).
package vclock

import (
	"errors"
	"sync"
	"time"
)

// Epoch is the instant at which every virtual clock starts.  It is an
// arbitrary fixed point so that virtual-time experiments are reproducible
// byte-for-byte.
var Epoch = time.Date(2001, 11, 12, 0, 0, 0, 0, time.UTC) // Middleware 2001

// Clock is a source of time for a scheduler.  Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now reports the current instant on this clock.
	Now() time.Time

	// WaitUntil blocks until the clock reaches t, or until wake is
	// signalled, whichever comes first.  It reports whether the deadline
	// was reached (true) or the wait was interrupted (false).  A nil wake
	// channel means the wait cannot be interrupted.
	//
	// For a virtual clock, reaching t means advancing the clock to t.
	WaitUntil(t time.Time, wake <-chan struct{}) bool
}

// IdleWaiter is implemented by coordinated clocks (GroupVirtual members)
// whose owner may become idle without a pending deadline.  A scheduler that
// has nothing to run and no timer, but registered external sources, calls
// WaitIdle instead of blocking privately, so that the peers' timers can
// advance the shared clock.  WaitIdle returns when wake is signalled; wake
// must not be nil.
type IdleWaiter interface {
	WaitIdle(wake <-chan struct{})
}

// WakeNotifier is implemented by coordinated clocks that must learn about a
// wake signal BEFORE it is sent on the waiter's wake channel.  The scheduler
// calls NotifyWake from signalWake ahead of the channel send, so the group
// can always distinguish "this member has work pending at the current
// instant" from "this member is genuinely idle" — without racing the
// member's own select on the channel.  Without the notification a wake that
// is consumed by the waiter just before the group inspects it would let the
// clock advance past work pending at the current instant.
type WakeNotifier interface {
	NotifyWake()
}

// Binder is implemented by clocks that track which scheduler drives them.
// Bind is called once when the owner starts consuming time (Scheduler.Run)
// and may refuse a configuration the clock cannot serve correctly; Unbind
// releases the claim on shutdown.  Unbind with a non-owner is a no-op.
type Binder interface {
	Bind(owner any) error
	Unbind(owner any)
}

// ErrSharedVirtual is returned by Scheduler.Run when two schedulers try to
// drive one plain Virtual concurrently.  A plain Virtual advances the moment
// its single scheduler goes idle; with two schedulers that jumps time past
// the peer's earlier deadlines (time travel).  Use NewGroupVirtual and give
// each scheduler its own Member for a coordinated shared clock.
var ErrSharedVirtual = errors.New("vclock: plain Virtual driven by a second concurrent scheduler; use GroupVirtual members for shared-clock simulations")

// ErrMemberLeft is returned when binding a group member whose scheduler has
// already shut down and left the group.
var ErrMemberLeft = errors.New("vclock: group member already left its clock group")

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// WaitUntil implements Clock.
func (Real) WaitUntil(t time.Time, wake <-chan struct{}) bool {
	d := time.Until(t)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-wake:
		return false
	}
}

// Virtual is a deterministic simulated clock.  Time advances only through
// WaitUntil or Advance; Now never moves on its own.  The zero value is not
// usable; construct with NewVirtual.
//
// A Virtual serves exactly one scheduler at a time: WaitUntil advances the
// clock the instant its caller goes idle, which is only correct when that
// caller is the sole consumer of time.  Scheduler.Run enforces this through
// Bind and fails with ErrSharedVirtual if a second scheduler drives the same
// Virtual concurrently (sequential reuse is fine — the owner is released on
// shutdown).  Several schedulers sharing one time base must use GroupVirtual
// members instead.
type Virtual struct {
	mu    sync.Mutex
	now   time.Time
	owner any // the scheduler currently driving this clock, nil if none
}

var (
	_ Clock  = (*Virtual)(nil)
	_ Binder = (*Virtual)(nil)
)

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: Epoch}
}

// NewVirtualAt returns a virtual clock positioned at start.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// WaitUntil implements Clock.  If wake is already signalled the wait is
// abandoned without moving the clock; otherwise the clock jumps to t.
func (v *Virtual) WaitUntil(t time.Time, wake <-chan struct{}) bool {
	if wake != nil {
		select {
		case <-wake:
			return false
		default:
		}
	}
	v.Advance(t)
	return true
}

// Advance moves the clock forward to t.  Moving backwards is a no-op: the
// clock is monotonic.
func (v *Virtual) Advance(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}

// AdvanceBy moves the clock forward by d and returns the new instant.
func (v *Virtual) AdvanceBy(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d > 0 {
		v.now = v.now.Add(d)
	}
	return v.now
}

// Bind implements Binder: a plain Virtual refuses a second concurrent owner
// (the shared-clock time-travel bug this replaces was nondeterministic and
// silent; the refusal is deterministic and loud).
func (v *Virtual) Bind(owner any) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.owner != nil && v.owner != owner {
		return ErrSharedVirtual
	}
	v.owner = owner
	return nil
}

// Unbind implements Binder.
func (v *Virtual) Unbind(owner any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.owner == owner {
		v.owner = nil
	}
}
