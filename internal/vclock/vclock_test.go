package vclock

import (
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	target := Epoch.Add(5 * time.Second)
	v.Advance(target)
	if !v.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", v.Now(), target)
	}
	// Monotonic: moving backwards is a no-op.
	v.Advance(Epoch)
	if !v.Now().Equal(target) {
		t.Fatalf("Now = %v after backwards Advance, want %v", v.Now(), target)
	}
}

func TestVirtualAdvanceBy(t *testing.T) {
	v := NewVirtualAt(Epoch)
	got := v.AdvanceBy(time.Minute)
	if want := Epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("AdvanceBy = %v, want %v", got, want)
	}
	// Negative durations do not move the clock.
	got = v.AdvanceBy(-time.Hour)
	if want := Epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("AdvanceBy(-1h) = %v, want %v", got, want)
	}
}

func TestVirtualWaitUntilAdvances(t *testing.T) {
	v := NewVirtual()
	target := Epoch.Add(time.Second)
	if !v.WaitUntil(target, nil) {
		t.Fatal("WaitUntil = false, want true")
	}
	if !v.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", v.Now(), target)
	}
}

func TestVirtualWaitUntilInterrupted(t *testing.T) {
	v := NewVirtual()
	wake := make(chan struct{}, 1)
	wake <- struct{}{}
	if v.WaitUntil(Epoch.Add(time.Second), wake) {
		t.Fatal("WaitUntil = true, want false when wake pending")
	}
	if !v.Now().Equal(Epoch) {
		t.Fatalf("clock moved to %v on interrupted wait", v.Now())
	}
}

func TestRealWaitUntilPastDeadline(t *testing.T) {
	c := Real{}
	if !c.WaitUntil(time.Now().Add(-time.Second), nil) {
		t.Fatal("WaitUntil(past) = false, want true")
	}
}

func TestRealWaitUntilWake(t *testing.T) {
	c := Real{}
	wake := make(chan struct{})
	go close(wake)
	if c.WaitUntil(time.Now().Add(time.Hour), wake) {
		t.Fatal("WaitUntil = true, want false on wake")
	}
}

func TestRealWaitUntilShortDeadline(t *testing.T) {
	c := Real{}
	start := time.Now()
	if !c.WaitUntil(start.Add(5*time.Millisecond), nil) {
		t.Fatal("WaitUntil = false, want true")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("WaitUntil returned before the deadline")
	}
}
